"""Integration tests for hidden-service (eepsite) hosting at the message level.

The usability experiment of Section 6.2.3 relies on eepsites: the paper
hosts three small test eepsites and fetches them through the network while
an upstream firewall null-routes blocked peers.  These tests exercise the
message-level equivalents: LeaseSet publication, DHT lookups, and fetches
with and without a censor blocklist.
"""

import pytest

from repro.netdb.routerinfo import BandwidthTier
from repro.sim.network import I2PNetwork


@pytest.fixture()
def network():
    net = I2PNetwork(seed=77)
    for _ in range(5):
        net.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
    for _ in range(20):
        net.add_router(bandwidth_tier=BandwidthTier.N)
    net.run_convergence_rounds(rounds=2)
    return net


def pick_host_and_client(network):
    routers = [r for r in network.routers.values() if not r.floodfill]
    return routers[0], routers[-1]


class TestEepsiteHosting:
    def test_host_publishes_leaseset(self, network):
        host, _ = pick_host_and_client(network)
        destination = network.host_eepsite(host.hash, name="test.i2p")
        assert destination.hash in host.hosted_destinations
        assert host.store.get_leaseset(destination.hash) is not None
        # At least one floodfill stores the LeaseSet.
        floodfills = [r for r in network.routers.values() if r.floodfill]
        assert any(ff.store.get_leaseset(destination.hash) for ff in floodfills)

    def test_b32_address_unique_per_destination(self, network):
        host, _ = pick_host_and_client(network)
        a = network.host_eepsite(host.hash, name="a.i2p")
        b = network.host_eepsite(host.hash, name="b.i2p")
        assert a.b32_address != b.b32_address


class TestLeaseSetLookup:
    def test_client_resolves_leaseset(self, network):
        host, client = pick_host_and_client(network)
        destination = network.host_eepsite(host.hash)
        leaseset = network.lookup_leaseset(client.hash, destination.hash)
        assert leaseset is not None
        assert leaseset.hash == destination.hash
        # The client caches the LeaseSet locally after the lookup.
        assert client.store.get_leaseset(destination.hash) is not None

    def test_unknown_destination_not_found(self, network):
        _, client = pick_host_and_client(network)
        assert network.lookup_leaseset(client.hash, b"\x99" * 32) is None


class TestEepsiteFetch:
    def test_fetch_succeeds_without_blocking(self, network):
        host, client = pick_host_and_client(network)
        destination = network.host_eepsite(host.hash)
        succeeded, elapsed = network.fetch_eepsite(client.hash, destination.hash)
        assert succeeded
        assert elapsed > 0

    def test_fetch_fails_when_everything_blocked(self, network):
        host, client = pick_host_and_client(network)
        destination = network.host_eepsite(host.hash)
        blocked = {
            router.ip
            for router in network.routers.values()
            if router.hash != client.hash
        }
        succeeded, elapsed = network.fetch_eepsite(
            client.hash, destination.hash, blocked_ips=blocked
        )
        assert not succeeded
        assert elapsed > 0

    def test_fetch_unknown_destination_fails(self, network):
        _, client = pick_host_and_client(network)
        succeeded, _ = network.fetch_eepsite(client.hash, b"\x77" * 32)
        assert not succeeded
