"""Tests for the churn/longevity model."""

import random

import pytest

from repro.sim.churn import (
    DEFAULT_LIFETIME_CLASSES,
    ChurnModel,
    LifetimeClass,
    PresenceSchedule,
)


class TestPresenceSchedule:
    def test_membership_window(self):
        schedule = PresenceSchedule(join_day=5, leave_day=10, online_probability=1.0)
        assert schedule.membership_days == 5
        assert schedule.is_member_on(5)
        assert schedule.is_member_on(9)
        assert not schedule.is_member_on(10)
        assert not schedule.is_member_on(4)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            PresenceSchedule(join_day=5, leave_day=5, online_probability=1.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            PresenceSchedule(join_day=0, leave_day=2, online_probability=1.5)

    def test_boundary_days_always_online(self):
        schedule = PresenceSchedule(join_day=0, leave_day=5, online_probability=0.0)
        rng = random.Random(0)
        assert schedule.is_online_on(0, rng)
        assert schedule.is_online_on(4, rng)
        assert not schedule.is_online_on(2, rng)  # probability 0 inside

    def test_not_online_outside_membership(self):
        schedule = PresenceSchedule(join_day=0, leave_day=5, online_probability=1.0)
        assert not schedule.is_online_on(10, random.Random(0))


class TestChurnModel:
    def test_requires_classes(self):
        with pytest.raises(ValueError):
            ChurnModel(lifetime_classes=[])

    def test_zero_weight_rejected(self):
        cls = LifetimeClass("x", 0.0, 1, 2, (0.9, 1.0))
        with pytest.raises(ValueError):
            ChurnModel(lifetime_classes=[cls])

    def test_sample_schedule_within_class_bounds(self):
        model = ChurnModel(rng=random.Random(1))
        for _ in range(200):
            schedule = model.sample_schedule(join_day=10)
            assert schedule.join_day == 10
            assert 1 <= schedule.membership_days <= 401

    def test_initial_schedule_backdated(self):
        model = ChurnModel(rng=random.Random(2))
        backdated = 0
        for _ in range(200):
            schedule = model.sample_initial_schedule(campaign_start_day=0)
            assert schedule.join_day <= 0
            assert schedule.leave_day > 0 or schedule.leave_day > schedule.join_day
            if schedule.join_day < 0:
                backdated += 1
        assert backdated > 100

    def test_expected_lifetime_positive_and_plausible(self):
        model = ChurnModel()
        expected = model.expected_lifetime_days()
        assert 10 < expected < 120

    def test_expected_daily_turnover(self):
        model = ChurnModel()
        turnover = model.expected_daily_turnover(30_000)
        assert 100 < turnover < 3_000

    def test_class_sampling_respects_weights(self):
        heavy = LifetimeClass("heavy", 0.99, 1, 2, (1.0, 1.0))
        light = LifetimeClass("light", 0.01, 50, 60, (1.0, 1.0))
        model = ChurnModel(lifetime_classes=[heavy, light], rng=random.Random(3))
        names = [model.sample_class().name for _ in range(500)]
        assert names.count("heavy") > 450

    def test_presence_for_days_length(self):
        model = ChurnModel(rng=random.Random(4))
        schedule = PresenceSchedule(join_day=0, leave_day=30, online_probability=0.9)
        presence = model.presence_for_days(schedule, days=20)
        assert len(presence) == 20
        assert presence[0] is True

    def test_default_classes_cover_short_and_long_lifetimes(self):
        lifetimes = [(c.min_days, c.max_days) for c in DEFAULT_LIFETIME_CLASSES]
        assert min(low for low, _ in lifetimes) <= 1.0
        assert max(high for _, high in lifetimes) >= 90.0
