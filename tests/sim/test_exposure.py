"""Tests for the shared exposure engine.

The engine's contract: experiments served from the cache are *byte
identical* to experiments that rebuild population + exposure from scratch,
day state is prefix-stable under lazy extension, and per-monitor masks do
not depend on which other monitors exist.
"""

import numpy as np
import pytest

from repro.sim.exposure import ExposureEngine, SharedExposure, default_engine
from repro.sim.observation import MonitorMode, MonitorSpec, standard_monitor_fleet
from repro.sim.population import PopulationConfig
from repro.sim.rng import derive_seed


CONFIG = PopulationConfig(target_daily_population=600, horizon_days=6, seed=21)
OBS_SEED = derive_seed(21, "observation")


@pytest.fixture()
def engine():
    return ExposureEngine()


class TestEngineCache:
    def test_same_key_returns_same_entry(self, engine):
        a = engine.get(CONFIG, OBS_SEED, days=2)
        b = engine.get(CONFIG, OBS_SEED, days=4)
        assert a is b
        assert engine.misses == 1
        assert engine.hits == 1
        assert a.days_materialised >= 4

    def test_different_seed_different_entry(self, engine):
        a = engine.get(CONFIG, OBS_SEED, days=1)
        b = engine.get(CONFIG, OBS_SEED + 1, days=1)
        assert a is not b

    def test_lru_eviction(self):
        engine = ExposureEngine(capacity=2)
        keys = [
            PopulationConfig(target_daily_population=200, horizon_days=2, seed=s)
            for s in (1, 2, 3)
        ]
        entries = [engine.get(cfg, 0, days=1) for cfg in keys]
        assert len(engine) == 2
        # Key 1 was evicted: requesting it again is a rebuild, not a hit.
        rebuilt = engine.get(keys[0], 0, days=1)
        assert rebuilt is not entries[0]

    def test_days_beyond_horizon_rejected(self, engine):
        exposure = engine.get(CONFIG, OBS_SEED)
        with pytest.raises(ValueError):
            exposure.ensure_days(CONFIG.horizon_days + 1)

    def test_empty_engine_is_truthy(self):
        # Regression: `engine or default_engine()` must never discard a
        # freshly created (empty, len()==0) engine.
        assert ExposureEngine()
        assert default_engine() is default_engine()


class TestPrefixStability:
    def test_lazy_extension_preserves_prefix(self):
        spec = MonitorSpec("m", MonitorMode.FLOODFILL, 8000.0)
        short = SharedExposure(CONFIG, OBS_SEED)
        short.ensure_days(2)
        long = SharedExposure(CONFIG, OBS_SEED)
        long.ensure_days(6)
        for day in range(2):
            assert np.array_equal(
                short.monitor_day_mask(spec, day), long.monitor_day_mask(spec, day)
            )
            assert np.array_equal(
                short.exposure(day).flood_exposed, long.exposure(day).flood_exposed
            )
            assert np.array_equal(
                short.view(day).columns.indices, long.view(day).columns.indices
            )


class TestMaskSemantics:
    def test_mask_independent_of_fleet(self):
        """A monitor's mask does not change when other monitors appear."""
        exposure = SharedExposure(CONFIG, OBS_SEED)
        spec = MonitorSpec("ff-0", MonitorMode.FLOODFILL, 8000.0)
        alone = exposure.monitor_day_mask(spec, 0).copy()
        fleet = standard_monitor_fleet(5, 5)
        fleet_masks = exposure.fleet_day_masks(fleet, 0)
        assert np.array_equal(fleet_masks[0], alone)

    def test_distinct_monitors_differ(self):
        exposure = SharedExposure(CONFIG, OBS_SEED)
        a = exposure.monitor_day_mask(MonitorSpec("a", MonitorMode.FLOODFILL, 8000.0), 0)
        b = exposure.monitor_day_mask(MonitorSpec("b", MonitorMode.FLOODFILL, 8000.0), 0)
        assert not np.array_equal(a, b)

    def test_mask_cached_and_stable(self):
        exposure = SharedExposure(CONFIG, OBS_SEED)
        spec = MonitorSpec("m", MonitorMode.NON_FLOODFILL, 2000.0)
        first = exposure.monitor_day_mask(spec, 1)
        second = exposure.monitor_day_mask(spec, 1)
        assert np.array_equal(first, second)

    def test_union_and_cumulative_helpers(self):
        exposure = SharedExposure(CONFIG, OBS_SEED)
        fleet = standard_monitor_fleet(3, 3)
        sizes = exposure.cumulative_union_sizes(fleet, 0)
        assert sizes == sorted(sizes)
        union = exposure.union_day_mask(fleet, 0)
        assert int(union.sum()) == sizes[-1]

    def test_two_engines_byte_identical(self):
        """Rebuild-from-scratch equals cache-served, mask for mask."""
        spec_sets = [standard_monitor_fleet(2, 2), [MonitorSpec("x", MonitorMode.CLIENT, 256.0)]]
        a = SharedExposure(CONFIG, OBS_SEED)
        b = SharedExposure(CONFIG, OBS_SEED)
        for specs in spec_sets:
            for day in range(3):
                assert np.array_equal(
                    a.fleet_day_masks(specs, day), b.fleet_day_masks(specs, day)
                )


class TestProcessPoolFanout:
    def test_pool_matches_serial(self):
        config = PopulationConfig(target_daily_population=300, horizon_days=3, seed=5)
        serial = SharedExposure(config, OBS_SEED)
        pooled = SharedExposure(config, OBS_SEED)
        fleet = standard_monitor_fleet(4, 4)
        pooled.prefetch_masks(fleet, 3, workers=2, min_tasks_per_worker=1)
        for day in range(3):
            assert np.array_equal(
                serial.fleet_day_masks(fleet, day), pooled.fleet_day_masks(fleet, day)
            )


class TestWorkerValidation:
    """REPRO_EXPOSURE_WORKERS / explicit worker counts fail fast and clearly."""

    def _exposure(self):
        return SharedExposure(CONFIG, OBS_SEED)

    def _specs(self):
        return standard_monitor_fleet(1, 1, 8000.0)

    def test_non_integer_env_value_raises_clearly(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "three")
        with pytest.raises(ValueError, match="REPRO_EXPOSURE_WORKERS must be a non-negative integer"):
            self._exposure().prefetch_masks(self._specs(), days=2)

    def test_negative_env_value_raises_clearly(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "-3")
        with pytest.raises(ValueError, match="non-negative integer"):
            self._exposure().prefetch_masks(self._specs(), days=2)

    def test_float_env_value_raises_clearly(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "2.5")
        with pytest.raises(ValueError, match="REPRO_EXPOSURE_WORKERS"):
            self._exposure().prefetch_masks(self._specs(), days=2)

    def test_blank_env_value_means_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "  ")
        exposure = self._exposure()
        exposure.prefetch_masks(self._specs(), days=2)  # no error, serial path
        assert exposure.days_materialised == 2

    def test_explicit_negative_workers_raises(self):
        with pytest.raises(ValueError, match="workers must be a non-negative integer"):
            self._exposure().prefetch_masks(self._specs(), days=2, workers=-1)

    def test_explicit_non_integer_workers_raises(self):
        with pytest.raises(ValueError, match="workers must be a non-negative integer"):
            self._exposure().prefetch_masks(self._specs(), days=2, workers="many")

    def test_validation_happens_before_any_work(self, monkeypatch):
        """The error surfaces even when every mask is already cached."""
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "nope")
        exposure = self._exposure()
        with pytest.raises(ValueError, match="REPRO_EXPOSURE_WORKERS"):
            exposure.prefetch_masks(self._specs(), days=1)

    def test_zero_and_positive_are_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "0")
        exposure = self._exposure()
        exposure.prefetch_masks(self._specs(), days=1)
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "1")
        exposure.prefetch_masks(self._specs(), days=2)
        assert exposure.days_materialised == 2
