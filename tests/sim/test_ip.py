"""Tests for IP assignment and residential address churn."""

import random

import pytest

from repro.netdb.identity import RouterIdentity
from repro.sim.geo import default_registry
from repro.sim.ip import IpAssignmentManager


@pytest.fixture()
def manager():
    return IpAssignmentManager(default_registry(), random.Random(11))


def peer_id(i: int) -> bytes:
    return RouterIdentity.from_seed(f"peer-{i}").hash


class TestRegistration:
    def test_register_assigns_resolvable_ip(self, manager):
        assignment = manager.register_peer(peer_id(1))
        registry = default_registry()
        assert registry.resolve(assignment.ip) is not None
        assert manager.is_registered(peer_id(1))

    def test_register_twice_rejected(self, manager):
        manager.register_peer(peer_id(1))
        with pytest.raises(ValueError):
            manager.register_peer(peer_id(1))

    def test_register_with_explicit_country(self, manager):
        assignment = manager.register_peer(peer_id(2), country_code="DE")
        assert assignment.country_code == "DE"

    def test_register_with_explicit_asn(self, manager):
        assignment = manager.register_peer(peer_id(3), country_code="US", asn=7922)
        assert assignment.asn == 7922

    def test_unique_addresses(self, manager):
        ips = {manager.register_peer(peer_id(i)).ip for i in range(200)}
        assert len(ips) == 200

    def test_history_starts_with_one_entry(self, manager):
        manager.register_peer(peer_id(1))
        assert manager.address_count(peer_id(1)) == 1
        assert manager.asn_count(peer_id(1)) == 1
        assert manager.country_count(peer_id(1)) == 1


class TestRotation:
    def test_static_peers_never_change(self):
        manager = IpAssignmentManager(default_registry(), random.Random(5))
        static_found = False
        for i in range(100):
            manager.register_peer(peer_id(i))
            if manager.profile(peer_id(i)).change_interval_days == float("inf"):
                static_found = True
                first_ip = manager.current(peer_id(i)).ip
                for _ in range(50):
                    manager.maybe_rotate(peer_id(i))
                assert manager.current(peer_id(i)).ip == first_ip
                break
        assert static_found

    def test_force_rotate_changes_address_and_keeps_home_as(self, manager):
        manager.register_peer(peer_id(1), country_code="US", asn=7922)
        before = manager.current(peer_id(1)).ip
        after = manager.force_rotate(peer_id(1))
        assert after.ip != before
        assert after.asn == 7922
        assert manager.address_count(peer_id(1)) == 2

    def test_dynamic_peers_eventually_rotate(self):
        manager = IpAssignmentManager(default_registry(), random.Random(6))
        rotated = 0
        for i in range(150):
            manager.register_peer(peer_id(i))
        for _ in range(60):  # sixty simulated days
            for i in range(150):
                manager.maybe_rotate(peer_id(i))
        for i in range(150):
            if manager.address_count(peer_id(i)) >= 2:
                rotated += 1
        assert rotated > 40  # well over a third rotate within two months

    def test_nomadic_peers_span_multiple_ases(self):
        manager = IpAssignmentManager(default_registry(), random.Random(7))
        for i in range(300):
            manager.register_peer(peer_id(i))
        for _ in range(90):
            for i in range(300):
                manager.maybe_rotate(peer_id(i))
        multi_as = sum(1 for i in range(300) if manager.asn_count(peer_id(i)) > 1)
        heavy = sum(1 for i in range(300) if manager.asn_count(peer_id(i)) > 10)
        assert multi_as > 10
        assert heavy >= 1

    def test_maybe_rotate_requires_registration(self, manager):
        with pytest.raises(KeyError):
            manager.maybe_rotate(peer_id(99))


class TestIntrospection:
    def test_all_peer_ids(self, manager):
        ids = [peer_id(i) for i in range(5)]
        for pid in ids:
            manager.register_peer(pid)
        assert set(manager.all_peer_ids()) == set(ids)

    def test_history_returns_copy(self, manager):
        manager.register_peer(peer_id(1))
        history = manager.history(peer_id(1))
        history.append("tampered")
        assert len(manager.history(peer_id(1))) == 1

    def test_ipv6_assigned_only_for_supporting_as(self, manager):
        with_v6 = manager.register_peer(peer_id(1), country_code="US", asn=7922)
        without_v6 = manager.register_peer(peer_id(2), country_code="RU", asn=12389)
        assert with_v6.ipv6 is not None
        assert without_v6.ipv6 is None
