"""Tests for the simulation clock."""

import pytest

from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimulationClock


class TestSimulationClock:
    def test_initial_state(self):
        clock = SimulationClock()
        assert clock.now == 0.0
        assert clock.day == 0
        assert clock.hour_of_day == 0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(now=-1.0)

    def test_advance(self):
        clock = SimulationClock()
        assert clock.advance(100.0) == 100.0
        assert clock.now == 100.0

    def test_advance_backwards_rejected(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_hours_and_days(self):
        clock = SimulationClock()
        clock.advance_hours(2)
        assert clock.now == 2 * SECONDS_PER_HOUR
        clock.advance_days(1)
        assert clock.day == 1
        assert clock.hour_of_day == 2

    def test_advance_to(self):
        clock = SimulationClock(now=500.0)
        clock.advance_to(400.0)
        assert clock.now == 500.0
        clock.advance_to(1000.0)
        assert clock.now == 1000.0

    def test_seconds_into_day(self):
        clock = SimulationClock(now=SECONDS_PER_DAY + 123.0)
        assert clock.seconds_into_day == 123.0

    def test_start_of_day(self):
        clock = SimulationClock()
        assert clock.start_of_day(3) == 3 * SECONDS_PER_DAY
        with pytest.raises(ValueError):
            clock.start_of_day(-1)

    def test_hours_in_day(self):
        clock = SimulationClock()
        hours = list(clock.hours_in_day(2))
        assert len(hours) == 24
        assert hours[0] == 2 * SECONDS_PER_DAY
        assert hours[-1] == 2 * SECONDS_PER_DAY + 23 * SECONDS_PER_HOUR

    def test_copy_is_independent(self):
        clock = SimulationClock(now=10.0)
        other = clock.copy()
        other.advance(5.0)
        assert clock.now == 10.0
