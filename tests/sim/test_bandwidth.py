"""Tests for the bandwidth-tier / floodfill assignment model."""

import random
from collections import Counter

import pytest

from repro.netdb.routerinfo import BandwidthTier
from repro.sim.bandwidth import (
    DEFAULT_FLOODFILL_PROBABILITY,
    DEFAULT_TIER_WEIGHTS,
    BandwidthModel,
)


class TestConfiguration:
    def test_default_weights_cover_all_tiers(self):
        assert set(DEFAULT_TIER_WEIGHTS) == set(BandwidthTier)
        assert abs(sum(DEFAULT_TIER_WEIGHTS.values()) - 1.0) < 1e-6

    def test_missing_tier_rejected(self):
        weights = {BandwidthTier.L: 1.0}
        with pytest.raises(ValueError):
            BandwidthModel(tier_weights=weights)

    def test_zero_total_weight_rejected(self):
        weights = {tier: 0.0 for tier in BandwidthTier}
        with pytest.raises(ValueError):
            BandwidthModel(tier_weights=weights)


class TestSampling:
    def test_tier_distribution_matches_figure9_shape(self):
        model = BandwidthModel()
        rng = random.Random(0)
        counts = Counter(model.sample_tier(rng).value for _ in range(30_000))
        # L dominates, N is second, and the remaining tiers trail off.
        assert counts["L"] > counts["N"] > counts["P"]
        assert counts["P"] > counts["O"]
        assert counts["X"] > counts["M"]
        assert counts["L"] / 30_000 > 0.55

    def test_bandwidth_within_tier_range(self):
        model = BandwidthModel()
        rng = random.Random(1)
        for tier in BandwidthTier:
            for _ in range(50):
                kbps = model.sample_bandwidth_kbps(tier, rng)
                assert kbps >= tier.min_kbps
                if tier is not BandwidthTier.X:
                    assert kbps < tier.max_kbps

    def test_sample_assignment_consistency(self):
        model = BandwidthModel()
        rng = random.Random(2)
        for _ in range(500):
            assignment = model.sample(rng)
            assert assignment.primary_tier in assignment.advertised_tiers
            assert BandwidthTier.for_bandwidth(assignment.shared_kbps) is assignment.primary_tier

    def test_backwards_compat_o_flag_only_for_p_and_x(self):
        model = BandwidthModel()
        rng = random.Random(3)
        saw_compat = False
        for _ in range(3000):
            assignment = model.sample(rng)
            if len(assignment.advertised_tiers) > 1:
                saw_compat = True
                assert assignment.primary_tier in (BandwidthTier.P, BandwidthTier.X)
                assert BandwidthTier.O in assignment.advertised_tiers
        assert saw_compat

    def test_floodfill_share_near_nine_percent(self):
        model = BandwidthModel()
        rng = random.Random(4)
        floodfills = sum(model.sample(rng).floodfill for _ in range(30_000))
        share = floodfills / 30_000
        assert 0.06 < share < 0.13

    def test_qualified_floodfill_property(self):
        model = BandwidthModel()
        rng = random.Random(5)
        assignments = [model.sample(rng) for _ in range(5000)]
        qualified = [a for a in assignments if a.qualified_floodfill]
        assert qualified
        assert all(a.primary_tier.value in "NOPX" for a in qualified)


class TestExpectations:
    def test_expected_tier_share_normalised(self):
        model = BandwidthModel()
        total = sum(model.expected_tier_share(t) for t in BandwidthTier)
        assert abs(total - 1.0) < 1e-9

    def test_expected_floodfill_fraction_matches_paper_ballpark(self):
        model = BandwidthModel()
        assert 0.06 < model.expected_floodfill_fraction() < 0.12

    def test_expected_unqualified_share_matches_paper_ballpark(self):
        # The paper finds ~29 % of floodfills are manually enabled K/L/M routers.
        model = BandwidthModel()
        assert 0.10 < model.expected_unqualified_floodfill_share() < 0.45

    def test_custom_floodfill_probability(self):
        probabilities = {tier: 0.0 for tier in BandwidthTier}
        model = BandwidthModel(floodfill_probability=probabilities)
        assert model.expected_floodfill_fraction() == 0.0
        rng = random.Random(6)
        assert not any(model.sample(rng).floodfill for _ in range(200))
