"""Tests for peer selection and tunnel building."""

import random

import pytest

from repro.netdb.identity import RouterIdentity
from repro.netdb.routerinfo import RouterAddress, RouterInfo, TransportStyle, parse_capacity_string
from repro.sim.tunnels import (
    MAX_TUNNEL_LENGTH,
    TUNNEL_LIFETIME,
    PeerSelector,
    Tunnel,
    TunnelBuildOutcome,
    TunnelBuilder,
    TunnelDirection,
)


def make_info(seed: str, caps: str = "NR", ip: str = "10.0.0.1") -> RouterInfo:
    return RouterInfo(
        identity=RouterIdentity.from_seed(seed),
        addresses=(RouterAddress(TransportStyle.NTCP, ip, 12345),),
        capacity=parse_capacity_string(caps),
        published_at=0.0,
    )


def make_hidden(seed: str) -> RouterInfo:
    return RouterInfo(
        identity=RouterIdentity.from_seed(seed),
        addresses=(),
        capacity=parse_capacity_string("LU"),
        published_at=0.0,
    )


@pytest.fixture()
def candidates():
    return [make_info(f"peer-{i}", ip=f"10.0.{i // 250}.{i % 250 + 1}") for i in range(40)]


class TestPeerSelector:
    def test_selects_requested_count(self, candidates):
        selector = PeerSelector(random.Random(0))
        hops = selector.select_hops(candidates, 3)
        assert len(hops) == 3
        assert len({h.hash for h in hops}) == 3

    def test_hidden_peers_never_selected(self):
        selector = PeerSelector(random.Random(1))
        pool = [make_hidden(f"hidden-{i}") for i in range(10)]
        assert selector.select_hops(pool, 2) == []

    def test_fast_peers_preferred(self):
        selector = PeerSelector(random.Random(2))
        slow = [make_info(f"slow-{i}", caps="KR") for i in range(10)]
        fast = [make_info(f"fast-{i}", caps="XR") for i in range(10)]
        counts = {"fast": 0, "slow": 0}
        for _ in range(300):
            for hop in selector.select_hops(slow + fast, 2):
                label = "fast" if hop.bandwidth_tier.value == "X" else "slow"
                counts[label] += 1
        assert counts["fast"] > counts["slow"] * 3

    def test_exclusion(self, candidates):
        selector = PeerSelector(random.Random(3))
        excluded = {candidates[0].hash}
        for _ in range(50):
            hops = selector.select_hops(candidates, 3, exclude=excluded)
            assert candidates[0].hash not in {h.hash for h in hops}

    def test_zero_count_rejected(self, candidates):
        with pytest.raises(ValueError):
            PeerSelector().select_hops(candidates, 0)

    def test_unreachable_weight_reduced_not_zero(self):
        info = make_info("u", caps="NU")
        assert 0 < PeerSelector.selection_weight(info) < PeerSelector.selection_weight(make_info("r", caps="NR"))


class TestTunnel:
    def test_properties(self):
        hops = (b"\x01" * 32, b"\x02" * 32)
        tunnel = Tunnel(TunnelDirection.OUTBOUND, hops, created_at=0.0)
        assert tunnel.gateway == hops[0]
        assert tunnel.endpoint == hops[1]
        assert tunnel.length == 2
        assert tunnel.expires_at() == TUNNEL_LIFETIME
        assert not tunnel.is_expired(TUNNEL_LIFETIME - 1)
        assert tunnel.is_expired(TUNNEL_LIFETIME)


class TestTunnelBuilder:
    def test_successful_build(self, candidates):
        builder = TunnelBuilder(rng=random.Random(0), rejection_probability=0.0)
        result = builder.build(candidates, TunnelDirection.OUTBOUND, now=0.0)
        assert result.succeeded
        assert result.tunnel is not None
        assert result.tunnel.length == 2
        assert result.elapsed_seconds > 0

    def test_invalid_length(self, candidates):
        builder = TunnelBuilder()
        with pytest.raises(ValueError):
            builder.build(candidates, TunnelDirection.OUTBOUND, 0.0, length=0)
        with pytest.raises(ValueError):
            builder.build(candidates, TunnelDirection.OUTBOUND, 0.0, length=MAX_TUNNEL_LENGTH + 1)

    def test_no_peers_outcome(self):
        builder = TunnelBuilder(rng=random.Random(1))
        result = builder.build([], TunnelDirection.OUTBOUND, 0.0)
        assert result.outcome is TunnelBuildOutcome.NO_PEERS

    def test_blocked_hop_times_out(self, candidates):
        builder = TunnelBuilder(rng=random.Random(2), rejection_probability=0.0)
        blocked = {ip for info in candidates for ip in info.ip_addresses}
        result = builder.build(
            candidates, TunnelDirection.OUTBOUND, 0.0, blocked_ips=blocked
        )
        assert result.outcome is TunnelBuildOutcome.TIMEOUT
        assert result.elapsed_seconds >= builder.build_timeout_seconds

    def test_rejection_outcome(self, candidates):
        builder = TunnelBuilder(rng=random.Random(3), rejection_probability=1.0)
        result = builder.build(candidates, TunnelDirection.OUTBOUND, 0.0)
        assert result.outcome is TunnelBuildOutcome.REJECTED

    def test_build_with_retries_succeeds_without_blocking(self, candidates):
        builder = TunnelBuilder(rng=random.Random(4), rejection_probability=0.0)
        tunnel, elapsed, attempts = builder.build_with_retries(
            candidates, TunnelDirection.INBOUND, now=0.0
        )
        assert tunnel is not None
        assert attempts == 1
        assert elapsed < 5.0

    def test_build_with_retries_gives_up_at_deadline(self, candidates):
        builder = TunnelBuilder(rng=random.Random(5), rejection_probability=0.0)
        blocked = {ip for info in candidates for ip in info.ip_addresses}
        tunnel, elapsed, attempts = builder.build_with_retries(
            candidates, TunnelDirection.INBOUND, now=0.0,
            blocked_ips=blocked, deadline_seconds=30.0,
        )
        assert tunnel is None
        assert elapsed <= 30.0
        assert attempts >= 2

    def test_blocked_fraction_increases_latency(self, candidates):
        """More blocking -> more retries -> higher elapsed time on average."""
        all_ips = sorted({ip for info in candidates for ip in info.ip_addresses})
        def mean_elapsed(block_fraction, seed):
            rng = random.Random(seed)
            blocked = set(rng.sample(all_ips, int(block_fraction * len(all_ips))))
            builder = TunnelBuilder(rng=random.Random(seed), rejection_probability=0.0)
            total = 0.0
            for _ in range(30):
                _, elapsed, _ = builder.build_with_retries(
                    candidates, TunnelDirection.OUTBOUND, 0.0, blocked_ips=blocked
                )
                total += elapsed
            return total / 30
        assert mean_elapsed(0.8, 1) > mean_elapsed(0.0, 1)
