"""Tests for the netDb throughput measurement and the netdb-scale scenario."""

import pytest

from repro.core.scenario import get_scenario, resolve_scenario, run_scenario
from repro.sim.netdb_scale import (
    DEFAULT_ROUTER_COUNTS,
    NetDbScalePoint,
    measure_netdb_scale,
)


class TestMeasureNetDbScale:
    def test_point_fields_are_live(self):
        point = measure_netdb_scale(
            40, seed=7, convergence_rounds=2, warmup_limit=8, measure_rounds=3
        )
        assert isinstance(point, NetDbScalePoint)
        assert point.router_count == 40
        assert point.floodfill_count == 4
        assert point.messages_per_round > 0
        assert point.messages_per_second > 0
        assert point.rounds_measured == 3
        assert point.median_round_seconds > 0
        round_tripped = point.as_dict()
        assert round_tripped["router_count"] == 40
        assert round_tripped["messages_per_second"] == point.messages_per_second

    def test_steady_state_reaches_replay(self):
        """At a converged small network the warm-up must end on the
        replay fast path, not on the round cap."""
        point = measure_netdb_scale(
            40, seed=7, convergence_rounds=3, warmup_limit=12, measure_rounds=2
        )
        assert point.replay_rounds >= 2
        assert point.warmup_rounds < 12

    def test_rejects_trivial_network(self):
        with pytest.raises(ValueError):
            measure_netdb_scale(1)

    def test_default_curve_covers_three_decades(self):
        assert DEFAULT_ROUTER_COUNTS == (300, 1_000, 10_000)


class TestNetDbScaleScenario:
    def test_registered_spec(self):
        spec = get_scenario("netdb-scale")
        assert spec.kind == "netdb_scale"
        assert tuple(spec.params["router_counts"]) == (300, 1000, 10000)
        assert spec.router_count is None

    def test_router_count_override_pins_the_sweep(self):
        spec = resolve_scenario("netdb-scale", router_count=36)
        assert spec.router_count == 36
        result = run_scenario(spec, seed=11)
        summary = result.summaries["netdb_scale"]
        assert list(summary) == ["36"]
        assert summary["36"]["messages_per_second"] > 0
        figure = result.figures["scenario_netdb_scale"]
        assert figure.figure_id == "scenario_netdb_scale"

    def test_days_override_rejected_for_dayless_kind(self):
        with pytest.raises(ValueError):
            resolve_scenario("netdb-scale", days=5)

    def test_router_count_rejected_for_exposure_scenarios(self):
        with pytest.raises(ValueError):
            resolve_scenario("main_campaign", router_count=300)

    def test_router_count_must_be_sane(self):
        with pytest.raises(ValueError):
            resolve_scenario("netdb-scale", router_count=1)

    def test_small_sweep_produces_monotone_message_counts(self):
        """More routers publish more store messages per round."""
        spec = get_scenario("netdb-scale")
        from dataclasses import replace

        spec = replace(
            spec,
            params={
                "router_counts": (24, 48),
                "convergence_rounds": 2,
                "warmup_limit": 6,
                "measure_rounds": 2,
            },
        )
        result = run_scenario(spec, seed=5)
        summary = result.summaries["netdb_scale"]
        assert list(summary) == ["24", "48"]
        assert (
            summary["48"]["messages_per_round"] > summary["24"]["messages_per_round"]
        )
