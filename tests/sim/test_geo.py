"""Tests for the synthetic geographic/AS registry."""

import random
from collections import Counter

import pytest

from repro.sim.geo import (
    PRESS_FREEDOM_HIDDEN_THRESHOLD,
    AutonomousSystem,
    Country,
    GeoRegistry,
    default_registry,
)


@pytest.fixture(scope="module")
def registry() -> GeoRegistry:
    return default_registry()


class TestCountry:
    def test_poor_press_freedom_flag(self):
        assert Country("CN", "China", 0.01, 78.0).poor_press_freedom
        assert not Country("US", "United States", 0.2, 23.0).poor_press_freedom
        assert PRESS_FREEDOM_HIDDEN_THRESHOLD == 50.0


class TestAutonomousSystem:
    def test_ipv4_deterministic_and_in_prefix(self):
        asys = AutonomousSystem(7922, "Comcast", "US", 0.3, (24, 0), True)
        ip = asys.ipv4_for(5)
        assert ip.startswith("24.0.")
        assert asys.ipv4_for(5) == ip
        assert asys.ipv4_for(6) != ip

    def test_ipv4_octets_valid(self):
        asys = AutonomousSystem(1, "Test", "US", 0.1, (10, 0))
        for index in (0, 253, 254, 100_000):
            octets = [int(x) for x in asys.ipv4_for(index).split(".")]
            assert all(0 <= o <= 255 for o in octets)
            assert octets[2] >= 1 and octets[3] >= 1

    def test_ipv6_contains_asn(self):
        asys = AutonomousSystem(7922, "Comcast", "US", 0.3, (24, 0), True)
        assert f"{7922:x}" in asys.ipv6_for(1)


class TestDefaultRegistry:
    def test_has_top_countries(self, registry):
        for code in ("US", "RU", "GB", "FR", "CA", "AU", "CN"):
            assert registry.has_country(code)

    def test_us_has_largest_weight(self, registry):
        us = registry.country("US")
        assert all(us.weight >= c.weight for c in registry.countries)

    def test_every_country_has_an_as(self, registry):
        for country in registry.countries:
            assert registry.ases_in_country(country.code)

    def test_poor_press_freedom_group_size(self, registry):
        poor = registry.poor_press_freedom_countries()
        assert len(poor) >= 30
        assert any(c.code == "CN" for c in poor)

    def test_comcast_present(self, registry):
        asys = registry.autonomous_system(7922)
        assert asys.country_code == "US"


class TestSampling:
    def test_country_sampling_matches_weights(self, registry):
        rng = random.Random(1)
        counts = Counter(registry.sample_country(rng).code for _ in range(20_000))
        assert counts.most_common(1)[0][0] == "US"
        us_share = counts["US"] / 20_000
        assert 0.15 < us_share < 0.30

    def test_as_sampling_stays_in_country(self, registry):
        rng = random.Random(2)
        for _ in range(200):
            asys = registry.sample_as("DE", rng)
            assert asys.country_code == "DE"

    def test_as_sampling_unknown_country(self, registry):
        with pytest.raises(KeyError):
            registry.sample_as("ZZ", random.Random(0))


class TestResolution:
    def test_round_trip_ipv4(self, registry):
        rng = random.Random(3)
        for _ in range(100):
            country = registry.sample_country(rng)
            asys = registry.sample_as(country.code, rng)
            ip = asys.ipv4_for(rng.randint(0, 10_000))
            resolved = registry.resolve(ip)
            assert resolved is not None
            assert resolved == (asys.country_code, asys.asn)

    def test_round_trip_ipv6(self, registry):
        asys = registry.autonomous_system(7922)
        ip = asys.ipv6_for(12)
        assert registry.resolve(ip) == ("US", 7922)

    def test_unknown_ip(self, registry):
        assert registry.resolve("203.0.113.9") is None
        assert registry.resolve("not-an-ip") is None
        assert registry.resolve("1.2") is None

    def test_resolve_country_and_asn_helpers(self, registry):
        asys = registry.autonomous_system(7922)
        ip = asys.ipv4_for(0)
        assert registry.resolve_country(ip) == "US"
        assert registry.resolve_asn(ip) == 7922


class TestRegistryConstruction:
    def test_empty_countries_rejected(self):
        with pytest.raises(ValueError):
            GeoRegistry([], [])

    def test_as_with_unknown_country_rejected(self):
        countries = [Country("US", "United States", 1.0, 20.0)]
        ases = [AutonomousSystem(1, "X", "DE", 1.0, (10, 0))]
        with pytest.raises(ValueError):
            GeoRegistry(countries, ases)

    def test_residual_as_synthesised(self):
        countries = [Country("US", "United States", 1.0, 20.0)]
        ases = [AutonomousSystem(1, "X", "US", 0.5, (10, 0))]
        registry = GeoRegistry(countries, ases)
        us_ases = registry.ases_in_country("US")
        assert len(us_ases) == 2
        assert any(a.name == "US-other" for a in us_ases)
