"""Integration tests for the message-level network engine.

These tests exercise the four peer-discovery mechanisms from Section 4.2 of
the paper end to end: reseed bootstrap, DLM exploration, tunnel
participation, and floodfill flooding.
"""

import pytest

from repro.netdb.routerinfo import BandwidthTier
from repro.sim.network import I2PNetwork


class TestTopology:
    def test_add_and_remove_router(self):
        network = I2PNetwork(seed=1)
        router = network.add_router(floodfill=True)
        assert router.hash in network.routers
        assert network.remove_router(router.hash)
        assert not network.remove_router(router.hash)

    def test_routers_get_unique_ips_and_ports(self):
        network = I2PNetwork(seed=2)
        routers = [network.add_router() for _ in range(20)]
        endpoints = {(r.ip, r.port) for r in routers}
        assert len(endpoints) == 20

    def test_hidden_router_publishes_no_address(self):
        network = I2PNetwork(seed=3)
        hidden = network.add_router(hidden=True)
        info = hidden.routerinfo(network.clock.now)
        assert info.is_hidden


class TestBootstrap:
    def test_new_router_learns_peers_from_reseed(self):
        network = I2PNetwork(seed=4)
        for _ in range(10):
            network.add_router(floodfill=False)
        network.publish_all()
        newcomer = network.add_router()
        assert len(newcomer.store) > 0

    def test_bootstrap_learns_floodfills(self):
        network = I2PNetwork(seed=5)
        for _ in range(3):
            network.add_router(floodfill=True)
        for _ in range(5):
            network.add_router()
        newcomer = network.add_router()
        assert newcomer.known_floodfills


class TestPublishAndFlood:
    def test_publish_distributes_to_floodfills(self):
        network = I2PNetwork(seed=6)
        floodfills = [network.add_router(floodfill=True) for _ in range(4)]
        clients = [network.add_router() for _ in range(10)]
        delivered = network.publish_all()
        assert delivered > 0
        stored_anywhere = set()
        for ff in floodfills:
            stored_anywhere.update(ff.store.router_hashes())
        for client in clients:
            assert client.hash in stored_anywhere

    def test_flooding_spreads_entries_to_multiple_floodfills(self):
        network = I2PNetwork(seed=7)
        floodfills = [network.add_router(floodfill=True) for _ in range(6)]
        client = network.add_router()
        network.publish_all()
        holders = sum(1 for ff in floodfills if client.hash in ff.store)
        assert holders >= 2  # stored at the closest + flooded to neighbours


class TestExploration:
    def test_exploration_grows_netdb(self):
        network = I2PNetwork(seed=8)
        for _ in range(4):
            network.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
        for _ in range(20):
            network.add_router()
        network.publish_all()
        newcomer = network.add_router(do_bootstrap=False)
        newcomer.known_floodfills.update(network.floodfill_hashes())
        before = len(newcomer.store)
        learned = network.explore(newcomer.hash, lookups=4)
        assert learned > 0
        assert len(newcomer.store) == before + learned

    def test_exploration_without_floodfills(self):
        network = I2PNetwork(seed=9)
        lonely = network.add_router()
        assert network.explore(lonely.hash) == 0


class TestLookups:
    def test_iterative_lookup_finds_published_router(self):
        network = I2PNetwork(seed=10)
        for _ in range(5):
            network.add_router(floodfill=True)
        target = network.add_router()
        requester = network.add_router()
        network.publish_all()
        found = network.lookup_routerinfo(requester.hash, target.hash)
        assert found is not None
        assert found.hash == target.hash
        # The requester caches the result locally.
        assert target.hash in requester.store

    def test_lookup_unknown_key_returns_none(self):
        network = I2PNetwork(seed=11)
        for _ in range(3):
            network.add_router(floodfill=True)
        requester = network.add_router()
        network.publish_all()
        assert network.lookup_routerinfo(requester.hash, b"\x42" * 32) is None


class TestTunnels:
    def test_tunnel_building_propagates_knowledge(self):
        network = I2PNetwork(seed=12)
        for _ in range(3):
            network.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
        routers = [network.add_router(bandwidth_tier=BandwidthTier.N) for _ in range(15)]
        network.run_convergence_rounds(rounds=2)
        builder = routers[0]
        built = network.build_client_tunnels(builder.hash, pairs=3, length=2)
        assert built > 0
        participants = [r for r in network.routers.values() if r.participating_tunnels > 0]
        assert participants
        # At least one participant learned the builder through the tunnel.
        assert any(builder.hash in p.store for p in participants)


class TestConvergence:
    def test_convergence_gives_every_router_a_view(self, message_network):
        sizes = [len(r.store) for r in message_network.routers.values()]
        assert min(sizes) > 5
        assert message_network.messages_delivered > 0

    def test_floodfills_know_most_public_routers(self, message_network):
        total_public = sum(1 for r in message_network.routers.values() if not r.hidden)
        floodfills = [r for r in message_network.routers.values() if r.floodfill]
        best_view = max(len(ff.store) for ff in floodfills)
        assert best_view >= 0.5 * total_public

    def test_step_hours_expires_floodfill_entries(self):
        network = I2PNetwork(seed=13)
        ff = network.add_router(floodfill=True)
        network.add_router()
        network.publish_all()
        assert len(ff.store) > 0
        network.step_hours(2.0)  # floodfill expiry is one hour
        assert len(ff.store) == 0
