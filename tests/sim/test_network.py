"""Integration tests for the message-level network engine.

These tests exercise the four peer-discovery mechanisms from Section 4.2 of
the paper end to end: reseed bootstrap, DLM exploration, tunnel
participation, and floodfill flooding.
"""

import pytest

from repro.netdb.routerinfo import BandwidthTier
from repro.sim.network import I2PNetwork


class TestTopology:
    def test_add_and_remove_router(self):
        network = I2PNetwork(seed=1)
        router = network.add_router(floodfill=True)
        assert router.hash in network.routers
        assert network.remove_router(router.hash)
        assert not network.remove_router(router.hash)

    def test_routers_get_unique_ips_and_ports(self):
        network = I2PNetwork(seed=2)
        routers = [network.add_router() for _ in range(20)]
        endpoints = {(r.ip, r.port) for r in routers}
        assert len(endpoints) == 20

    def test_hidden_router_publishes_no_address(self):
        network = I2PNetwork(seed=3)
        hidden = network.add_router(hidden=True)
        info = hidden.routerinfo(network.clock.now)
        assert info.is_hidden


class TestReseedSync:
    def test_add_router_pushes_info_incrementally(self):
        network = I2PNetwork(seed=11)
        router = network.add_router()
        for server in network.reseed_servers:
            assert router.hash in {info.hash for info in server.known_routerinfos}

    def test_hidden_routers_not_pushed_to_reseeds(self):
        network = I2PNetwork(seed=12)
        hidden = network.add_router(hidden=True)
        for server in network.reseed_servers:
            assert hidden.hash not in {info.hash for info in server.known_routerinfos}

    def test_removed_router_forgotten_by_reseeds(self):
        network = I2PNetwork(seed=13)
        keeper = network.add_router()
        removed = network.add_router()
        assert network.remove_router(removed.hash)
        for server in network.reseed_servers:
            known = {info.hash for info in server.known_routerinfos}
            assert removed.hash not in known
            assert keeper.hash in known

    def test_batch_add_routers(self):
        network = I2PNetwork(seed=14)
        network.add_router(floodfill=True)
        batch = network.batch_add_routers(25)
        assert len(batch) == 25
        assert all(router.hash in network.routers for router in batch)
        # Every public batch member reaches the reseed servers exactly once.
        for server in network.reseed_servers:
            known = [info.hash for info in server.known_routerinfos]
            assert len(known) == len(set(known))
            for router in batch:
                assert router.hash in known

    def test_batch_converges_like_sequential(self):
        """A batched network reaches the same full netDb convergence a
        sequentially built one does (the topologies differ per-router —
        batch members bootstrap against the pre-batch network — but both
        must end with every router knowing every router)."""
        batched = I2PNetwork(seed=15)
        batched.add_router(floodfill=True)
        batched.batch_add_routers(10)
        sequential = I2PNetwork(seed=15)
        sequential.add_router(floodfill=True)
        for _ in range(10):
            sequential.add_router()
        assert len(batched.routers) == len(sequential.routers)
        batched.run_convergence_rounds(rounds=3)
        sequential.run_convergence_rounds(rounds=3)
        for network in (batched, sequential):
            total = len(network.routers)
            for router in network.routers.values():
                assert len(router.store) == total

    def test_batch_rejects_negative_count(self):
        network = I2PNetwork(seed=16)
        with pytest.raises(ValueError):
            network.batch_add_routers(-1)

    def test_late_joiner_gets_fresh_reseed_infos(self):
        """After a long clock advance, bootstrap infos must survive the
        next expiry pass (the reseed view is re-synced when stale)."""
        network = I2PNetwork(seed=17)
        for _ in range(8):
            network.add_router(floodfill=True)
        network.step_hours(30)  # beyond RouterInfo expiry
        newcomer = network.add_router()
        learned = len(newcomer.store)
        assert learned > 1
        network.step_hours(0.1)
        assert len(newcomer.store) == learned

    def test_late_floodfill_joiner_survives_short_floodfill_expiry(self):
        """Floodfill stores expire RouterInfos after 1h, so even a 2h-old
        reseed view must be refreshed before a floodfill bootstraps."""
        network = I2PNetwork(seed=18)
        for _ in range(8):
            network.add_router(floodfill=True)
        network.step_hours(2)
        newcomer = network.add_router(floodfill=True)
        learned = len(newcomer.store)
        assert learned > 1
        network.step_hours(0.1)
        assert len(newcomer.store) == learned


class TestBootstrap:
    def test_new_router_learns_peers_from_reseed(self):
        network = I2PNetwork(seed=4)
        for _ in range(10):
            network.add_router(floodfill=False)
        network.publish_all()
        newcomer = network.add_router()
        assert len(newcomer.store) > 0

    def test_bootstrap_learns_floodfills(self):
        network = I2PNetwork(seed=5)
        for _ in range(3):
            network.add_router(floodfill=True)
        for _ in range(5):
            network.add_router()
        newcomer = network.add_router()
        assert newcomer.known_floodfills


class TestPublishAndFlood:
    def test_publish_distributes_to_floodfills(self):
        network = I2PNetwork(seed=6)
        floodfills = [network.add_router(floodfill=True) for _ in range(4)]
        clients = [network.add_router() for _ in range(10)]
        delivered = network.publish_all()
        assert delivered > 0
        stored_anywhere = set()
        for ff in floodfills:
            stored_anywhere.update(ff.store.router_hashes())
        for client in clients:
            assert client.hash in stored_anywhere

    def test_flooding_spreads_entries_to_multiple_floodfills(self):
        network = I2PNetwork(seed=7)
        floodfills = [network.add_router(floodfill=True) for _ in range(6)]
        client = network.add_router()
        network.publish_all()
        holders = sum(1 for ff in floodfills if client.hash in ff.store)
        assert holders >= 2  # stored at the closest + flooded to neighbours


class TestExploration:
    def test_exploration_grows_netdb(self):
        network = I2PNetwork(seed=8)
        for _ in range(4):
            network.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
        for _ in range(20):
            network.add_router()
        network.publish_all()
        newcomer = network.add_router(do_bootstrap=False)
        newcomer.known_floodfills.update(network.floodfill_hashes())
        before = len(newcomer.store)
        learned = network.explore(newcomer.hash, lookups=4)
        assert learned > 0
        assert len(newcomer.store) == before + learned

    def test_exploration_without_floodfills(self):
        network = I2PNetwork(seed=9)
        lonely = network.add_router()
        assert network.explore(lonely.hash) == 0


class TestLookups:
    def test_iterative_lookup_finds_published_router(self):
        network = I2PNetwork(seed=10)
        for _ in range(5):
            network.add_router(floodfill=True)
        target = network.add_router()
        requester = network.add_router()
        network.publish_all()
        found = network.lookup_routerinfo(requester.hash, target.hash)
        assert found is not None
        assert found.hash == target.hash
        # The requester caches the result locally.
        assert target.hash in requester.store

    def test_lookup_unknown_key_returns_none(self):
        network = I2PNetwork(seed=11)
        for _ in range(3):
            network.add_router(floodfill=True)
        requester = network.add_router()
        network.publish_all()
        assert network.lookup_routerinfo(requester.hash, b"\x42" * 32) is None


class TestTunnels:
    def test_tunnel_building_propagates_knowledge(self):
        network = I2PNetwork(seed=12)
        for _ in range(3):
            network.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
        routers = [network.add_router(bandwidth_tier=BandwidthTier.N) for _ in range(15)]
        network.run_convergence_rounds(rounds=2)
        builder = routers[0]
        built = network.build_client_tunnels(builder.hash, pairs=3, length=2)
        assert built > 0
        participants = [r for r in network.routers.values() if r.participating_tunnels > 0]
        assert participants
        # At least one participant learned the builder through the tunnel.
        assert any(builder.hash in p.store for p in participants)


class TestConvergence:
    def test_convergence_gives_every_router_a_view(self, message_network):
        sizes = [len(r.store) for r in message_network.routers.values()]
        assert min(sizes) > 5
        assert message_network.messages_delivered > 0

    def test_floodfills_know_most_public_routers(self, message_network):
        total_public = sum(1 for r in message_network.routers.values() if not r.hidden)
        floodfills = [r for r in message_network.routers.values() if r.floodfill]
        best_view = max(len(ff.store) for ff in floodfills)
        assert best_view >= 0.5 * total_public

    def test_step_hours_expires_floodfill_entries(self):
        network = I2PNetwork(seed=13)
        ff = network.add_router(floodfill=True)
        network.add_router()
        network.publish_all()
        assert len(ff.store) > 0
        network.step_hours(2.0)  # floodfill expiry is one hour
        assert len(ff.store) == 0
