"""Tests for reseed servers, bootstrap, and manual reseeding."""

import random

import pytest

from repro.netdb.identity import RouterIdentity
from repro.netdb.routerinfo import RouterAddress, RouterInfo, TransportStyle, parse_capacity_string
from repro.sim.reseed import (
    DEFAULT_RESEED_SERVERS,
    ROUTERINFOS_PER_RESEED,
    ReseedServer,
    bootstrap,
    create_reseed_file,
)


def make_infos(count: int):
    return [
        RouterInfo(
            identity=RouterIdentity.from_seed(f"peer-{i}"),
            addresses=(RouterAddress(TransportStyle.NTCP, f"10.0.{i // 250}.{i % 250 + 1}", 12345),),
            capacity=parse_capacity_string("LR"),
            published_at=0.0,
        )
        for i in range(count)
    ]


@pytest.fixture()
def servers():
    infos = make_infos(300)
    result = [ReseedServer(hostname=name) for name in DEFAULT_RESEED_SERVERS[:3]]
    for server in result:
        server.update_known(infos)
    return result


class TestReseedServer:
    def test_serves_limited_sample(self, servers):
        sample = servers[0].serve("198.51.100.1")
        assert len(sample) == ROUTERINFOS_PER_RESEED

    def test_same_source_same_sample(self, servers):
        first = servers[0].serve("198.51.100.1")
        second = servers[0].serve("198.51.100.1")
        assert [i.hash for i in first] == [i.hash for i in second]

    def test_different_sources_get_different_samples(self, servers):
        a = {i.hash for i in servers[0].serve("198.51.100.1")}
        b = {i.hash for i in servers[0].serve("203.0.113.7")}
        assert a != b

    def test_blocked_server_serves_nothing(self, servers):
        servers[0].blocked = True
        assert servers[0].serve("198.51.100.1") == []

    def test_small_netdb_served_entirely(self):
        server = ReseedServer(hostname="tiny")
        server.update_known(make_infos(10))
        assert len(server.serve("198.51.100.1")) == 10

    def test_update_known_clears_cache(self, servers):
        first = servers[0].serve("198.51.100.1")
        servers[0].update_known(make_infos(50))
        second = servers[0].serve("198.51.100.1")
        assert {i.hash for i in first} != {i.hash for i in second}


class TestBootstrap:
    def test_successful_bootstrap_returns_about_150(self, servers):
        result = bootstrap("198.51.100.1", servers, rng=random.Random(0))
        assert result.succeeded
        assert result.servers_contacted == 2
        # Two servers × 75 RouterInfos, minus duplicates.
        assert 75 <= len(result.routerinfos) <= 150

    def test_all_blocked_fails(self, servers):
        for server in servers:
            server.blocked = True
        result = bootstrap("198.51.100.1", servers, rng=random.Random(0))
        assert not result.succeeded
        assert result.servers_blocked == 2

    def test_manual_reseed_rescues_blocked_client(self, servers):
        for server in servers:
            server.blocked = True
        reseed_file = create_reseed_file(b"\x01" * 32, make_infos(100))
        result = bootstrap(
            "198.51.100.1", servers, rng=random.Random(0), manual_reseed=reseed_file
        )
        assert result.succeeded
        assert result.used_manual_reseed

    def test_no_servers_at_all(self):
        result = bootstrap("198.51.100.1", [], rng=random.Random(0))
        assert not result.succeeded
        result_manual = bootstrap(
            "198.51.100.1", [], rng=random.Random(0),
            manual_reseed=create_reseed_file(b"\x01" * 32, make_infos(10)),
        )
        assert result_manual.succeeded
        assert result_manual.used_manual_reseed


class TestReseedFile:
    def test_limit_applied(self):
        reseed_file = create_reseed_file(b"\x01" * 32, make_infos(500), limit=150)
        assert len(reseed_file) == 150

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            create_reseed_file(b"\x01" * 32, make_infos(5), limit=0)
