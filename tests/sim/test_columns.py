"""Seeded equivalence tests for the columnar population engine.

The columnar ``DayView`` must expose exactly the same peers and per-day
attributes as the row-oriented snapshot path — the lazily materialised
snapshots are the reference, and the recording fast paths must agree with
the row-oriented reference implementations they replaced.
"""

import numpy as np
import pytest

from repro.core.monitor import MonitoringRouter, ObservationLog
from repro.sim.columns import TIER_ORDER, PeerColumns
from repro.sim.observation import MonitorMode, MonitorSpec, ObservationModel
from repro.sim.population import (
    DayView,
    I2PPopulation,
    PopulationConfig,
    reset_snapshot_allocations,
    snapshot_allocations,
)


@pytest.fixture(scope="module")
def population_run():
    population = I2PPopulation(
        PopulationConfig(target_daily_population=700, horizon_days=6, seed=77)
    )
    views = list(population.iter_days())
    return population, views


class TestDayViewEquivalence:
    def test_columns_match_materialised_snapshots(self, population_run):
        _, views = population_run
        for view in views:
            cols = view.columns
            assert cols is not None
            snapshots = view.snapshots
            assert len(snapshots) == cols.count == view.online_count
            for row, snapshot in enumerate(snapshots):
                assert snapshot.peer_id == cols.peer_ids[row]
                assert snapshot.index == int(cols.indices[row])
                assert snapshot.ip == cols.ip[row]
                assert snapshot.ipv6 == cols.ipv6[row]
                assert snapshot.country_code == cols.country[row]
                assert snapshot.activity == pytest.approx(cols.activity[row])
                assert snapshot.base_visibility == pytest.approx(
                    cols.base_visibility[row]
                )
                assert snapshot.bandwidth_tier is TIER_ORDER[cols.tier_code[row]]
                assert snapshot.floodfill == bool(cols.floodfill[row])
                assert snapshot.reachable == bool(cols.reachable[row])
                assert snapshot.firewalled == bool(cols.firewalled[row])
                assert snapshot.hidden == bool(cols.hidden[row])
                assert snapshot.has_valid_ip == bool(cols.valid_ip[row])
                assert snapshot.is_new_today == bool(cols.new_today[row])
                assert snapshot.port == int(cols.port[row])

    def test_counts_derive_from_columns(self, population_run):
        _, views = population_run
        for view in views:
            assert view.known_ip_count == sum(
                1 for s in view.snapshots if s.has_valid_ip
            )
            assert view.firewalled_count == sum(1 for s in view.snapshots if s.firewalled)
            assert view.hidden_count == sum(1 for s in view.snapshots if s.hidden)
            assert view.floodfill_count == sum(1 for s in view.snapshots if s.floodfill)
            assert view.ip_addresses() == [
                s.ip for s in view.snapshots if s.has_valid_ip and s.ip is not None
            ]

    def test_same_seed_same_columns(self):
        config = PopulationConfig(target_daily_population=400, horizon_days=4, seed=9)
        a = I2PPopulation(config)
        b = I2PPopulation(config)
        for view_a, view_b in zip(a.iter_days(), b.iter_days()):
            cols_a, cols_b = view_a.columns, view_b.columns
            assert np.array_equal(cols_a.indices, cols_b.indices)
            assert list(cols_a.ip) == list(cols_b.ip)
            assert np.array_equal(cols_a.firewalled, cols_b.firewalled)
            assert np.array_equal(cols_a.hidden, cols_b.hidden)

    def test_snapshots_are_lazy(self):
        population = I2PPopulation(
            PopulationConfig(target_daily_population=300, horizon_days=2, seed=3)
        )
        reset_snapshot_allocations()
        view = population.day_view(0)
        assert view.online_count > 0
        assert view.known_ip_count >= 0
        assert snapshot_allocations() == 0
        _ = view.snapshots
        assert snapshot_allocations() == view.online_count
        _ = view.snapshots  # cached: no second materialisation
        assert snapshot_allocations() == view.online_count

    def test_legacy_snapshot_construction_still_works(self, population_run):
        _, views = population_run
        reference = views[0]
        legacy = DayView(day=reference.day, snapshots=reference.snapshots)
        assert legacy.online_count == reference.online_count
        assert legacy.known_ip_count == reference.known_ip_count
        assert legacy.firewalled_count == reference.firewalled_count


class TestObservationEquivalence:
    def test_masks_match_index_observations(self, population_run):
        _, views = population_run
        view = views[0]
        fleet = [
            MonitorSpec("ff", MonitorMode.FLOODFILL, 8000.0),
            MonitorSpec("nff", MonitorMode.NON_FLOODFILL, 8000.0),
        ]
        masks = ObservationModel(seed=5).observe_day_masks(view, fleet)
        indices = ObservationModel(seed=5).observe_day(view, fleet)
        assert masks.shape == (2, view.online_count)
        for mask, observed in zip(masks, indices):
            assert np.array_equal(np.nonzero(mask)[0], observed)
        assert ObservationModel.cumulative_union_sizes_from_masks(
            masks
        ) == ObservationModel.cumulative_union_sizes(indices)

    def test_columnar_exposure_matches_snapshot_exposure(self, population_run):
        _, views = population_run
        view = views[1]
        columnar = ObservationModel(seed=8).day_exposure(view)
        legacy_view = DayView(day=view.day, snapshots=view.snapshots)
        legacy = ObservationModel(seed=8).day_exposure(legacy_view)
        assert np.array_equal(columnar.flood_exposed, legacy.flood_exposed)
        assert np.array_equal(columnar.tunnel_exposed, legacy.tunnel_exposed)
        assert np.array_equal(columnar.visibility, legacy.visibility)


class TestRecordingEquivalence:
    """The columnar recording fast paths must agree with the row-oriented
    reference implementations, day by day and aggregate by aggregate."""

    @pytest.fixture(scope="class")
    def recorded(self):
        population = I2PPopulation(
            PopulationConfig(target_daily_population=500, horizon_days=5, seed=123)
        )
        model = ObservationModel(seed=11)
        spec = MonitorSpec("m", MonitorMode.FLOODFILL, 8000.0)
        columnar_log = ObservationLog()
        rows_log = ObservationLog()
        columnar_monitor = MonitoringRouter(
            spec=spec, collect_daily_ips=True, collect_daily_peers=True
        )
        rows_monitor = MonitoringRouter(
            spec=spec, collect_daily_ips=True, collect_daily_peers=True
        )
        for view in population.iter_days():
            observed = model.observe_day(view, [spec])[0]
            columnar_log.record_day(view, observed)
            columnar_monitor.record_day(view, observed)
            legacy_view = DayView(day=view.day, snapshots=view.snapshots)
            rows_log.record_day(legacy_view, observed)
            rows_monitor.record_day(legacy_view, observed)
        return columnar_log, rows_log, columnar_monitor, rows_monitor

    def test_daily_stats_identical(self, recorded):
        columnar_log, rows_log, _, _ = recorded
        assert len(columnar_log.daily) == len(rows_log.daily)
        for a, b in zip(columnar_log.daily, rows_log.daily):
            assert a == b

    def test_aggregates_identical(self, recorded):
        columnar_log, rows_log, _, _ = recorded
        assert columnar_log.unique_peer_count == rows_log.unique_peer_count
        assert set(columnar_log.peers) == set(rows_log.peers)
        for peer_id, reference in rows_log.peers.items():
            aggregate = columnar_log.peers[peer_id]
            assert aggregate == reference

    def test_bool_mask_accepted_on_snapshot_backed_views(self, population_run):
        """A boolean mask means the same thing on both view flavours."""
        _, views = population_run
        view = views[0]
        mask = np.zeros(view.online_count, dtype=bool)
        mask[:: 3] = True
        legacy_view = DayView(day=view.day, snapshots=view.snapshots)
        columnar_monitor = MonitoringRouter(
            spec=MonitorSpec("m", MonitorMode.FLOODFILL)
        )
        rows_monitor = MonitoringRouter(spec=MonitorSpec("m", MonitorMode.FLOODFILL))
        columnar_monitor.record_day(view, mask)
        rows_monitor.record_day(legacy_view, mask)
        assert (
            rows_monitor.daily_observed_counts
            == columnar_monitor.daily_observed_counts
            == [int(np.count_nonzero(mask))]
        )
        columnar_log, rows_log = ObservationLog(), ObservationLog()
        assert columnar_log.record_day(view, mask) == rows_log.record_day(
            legacy_view, mask
        )

    def test_monitor_state_identical(self, recorded):
        _, _, columnar_monitor, rows_monitor = recorded
        assert (
            columnar_monitor.daily_observed_counts
            == rows_monitor.daily_observed_counts
        )
        assert columnar_monitor.cumulative_peer_ids == rows_monitor.cumulative_peer_ids
        assert list(columnar_monitor.daily_ip_sets) == list(rows_monitor.daily_ip_sets)
        assert columnar_monitor.daily_peer_sets == rows_monitor.daily_peer_sets
        assert columnar_monitor.ips_in_window(4, 3) == rows_monitor.ips_in_window(4, 3)


class TestRecordingGuards:
    def test_monitor_rejects_views_from_different_populations(self):
        view_a = I2PPopulation(
            PopulationConfig(target_daily_population=200, horizon_days=2, seed=1)
        ).day_view(0)
        view_b = I2PPopulation(
            PopulationConfig(target_daily_population=200, horizon_days=2, seed=2)
        ).day_view(0)
        monitor = MonitoringRouter(spec=MonitorSpec("m", MonitorMode.FLOODFILL))
        monitor.record_day(view_a, np.ones(view_a.online_count, dtype=bool))
        with pytest.raises(ValueError):
            monitor.record_day(view_b, np.ones(view_b.online_count, dtype=bool))

    def test_log_rejects_mixed_recording_modes(self):
        population = I2PPopulation(
            PopulationConfig(target_daily_population=200, horizon_days=3, seed=1)
        )
        columnar_view = population.day_view(0)
        legacy_view = DayView(day=1, snapshots=columnar_view.snapshots)
        log = ObservationLog()
        log.record_day(columnar_view, np.ones(columnar_view.online_count, dtype=bool))
        with pytest.raises(ValueError):
            log.record_day(legacy_view, [0, 1])
        other = ObservationLog()
        other.record_day(legacy_view, [0, 1])
        next_view = population.day_view(1)
        with pytest.raises(ValueError):
            other.record_day(
                next_view, np.ones(next_view.online_count, dtype=bool)
            )


class TestPeerColumnsStore:
    def test_capacity_doubles_transparently(self):
        population = I2PPopulation(
            PopulationConfig(target_daily_population=300, horizon_days=3, seed=55)
        )
        columns = population.columns
        initial_size = columns.size
        # Consume all days: arrivals force appends (and possibly growth).
        for _ in population.iter_days():
            pass
        assert columns.size >= initial_size
        assert columns.size == len(population.peers)
        assert columns.peer_ids.shape[0] == columns.size
        assert columns.presence.shape == (columns.size, 3)
        # Index alignment survives growth.
        for index in (0, columns.size // 2, columns.size - 1):
            assert columns.records[index].peer_id == columns.peer_ids[index]

    def test_append_rejects_misaligned_record(self):
        population = I2PPopulation(
            PopulationConfig(target_daily_population=200, horizon_days=2, seed=6)
        )
        record = population.peers[0]
        with pytest.raises(ValueError):
            population.columns.append(
                record,
                static_ip=True,
                assignment=population.ip_manager.current(record.peer_id),
            )
