"""Batched message plane vs the legacy per-message loop: exact equivalence.

The batched plane (``I2PNetwork(batched=True)``, the default) must leave
the network in a **byte-identical** netDb end state to the legacy loop at
a fixed seed — including each store's dict *insertion order*, which
exploration replies scan (first ``max_results`` non-excluded entries).
These tests compare raw insertion-ordered store items, known-floodfill
sets, floodfill neighbour sets, store statistics, reseed-server contents,
and the delivered-message count.

The replay fast path (steady-state rounds re-applied from the memoised
write structure) is exercised explicitly: stepped-clock repeated publish
rounds must engage it *and* stay exact, and topology changes must
invalidate it.
"""

import pytest

from repro.netdb.routerinfo import BandwidthTier
from repro.sim.faults import FaultPlan
from repro.sim.network import I2PNetwork


def _build_mixed(batched: bool, seed: int = 15, fault_plan=None) -> I2PNetwork:
    """A small heterogeneous network: O-tier floodfills added one by one,
    an L-tier batch, a hidden router, and a late N-tier floodfill batch."""
    net = I2PNetwork(seed=seed, batched=batched, fault_plan=fault_plan)
    for _ in range(6):
        net.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
    net.batch_add_routers(20, bandwidth_tier=BandwidthTier.L)
    net.add_router(hidden=True)
    net.batch_add_routers(4, floodfill=True, bandwidth_tier=BandwidthTier.N)
    return net


def _netdb_state(net: I2PNetwork) -> dict:
    """The complete observable netDb end state, insertion order included."""
    state = {}
    for router_hash, router in net.routers.items():
        state[router_hash] = (
            # RAW insertion-ordered store items — exploration replies
            # depend on this order, so it is part of the contract.
            [(key, info.published_at) for key, info in router.store._routerinfos.items()],
            sorted(router.known_floodfills),
            sorted(router.floodfill_state._known_floodfills)
            if router.floodfill_state is not None
            else None,
            router.store.stats.as_dict(),
        )
    state["reseed"] = [
        sorted((info.hash, info.published_at) for info in server.known_routerinfos)
        for server in net.reseed_servers
    ]
    state["messages"] = net.messages_delivered
    return state


class TestExactEquivalence:
    def test_convergence_and_repeated_publish(self):
        """Convergence rounds plus a same-time double publish end
        byte-identical across the two planes."""
        nets = []
        for batched in (True, False):
            net = _build_mixed(batched)
            net.run_convergence_rounds(rounds=3)
            net.publish_all()
            net.publish_all()  # same-now republish: all writes stale
            nets.append(net)
        assert _netdb_state(nets[0]) == _netdb_state(nets[1])

    def test_stepped_clock_publishes_replay_and_stay_exact(self):
        """Steady-state stepped publishes hit the replay fast path on the
        batched plane and still match the legacy loop exactly."""
        nets = []
        for batched in (True, False):
            net = _build_mixed(batched)
            net.run_convergence_rounds(rounds=3)
            for _ in range(4):
                net.clock.advance_hours(0.25)
                net.publish_all()
            nets.append(net)
        assert nets[0].plane_stats["replay_rounds"] >= 2
        assert _netdb_state(nets[0]) == _netdb_state(nets[1])

    def test_topology_change_invalidates_replay_but_stays_exact(self):
        """Adding a router after replay rounds forces a slow round; the
        planes must still agree afterwards."""
        nets = []
        for batched in (True, False):
            net = _build_mixed(batched)
            net.run_convergence_rounds(rounds=3)
            for _ in range(3):
                net.clock.advance_hours(0.25)
                net.publish_all()
            net.add_router(bandwidth_tier=BandwidthTier.M)
            net.clock.advance_hours(0.25)
            net.publish_all()
            net.clock.advance_hours(0.25)
            net.publish_all()
            nets.append(net)
        assert _netdb_state(nets[0]) == _netdb_state(nets[1])

    def test_exploration_replies_identical(self):
        """Exploration learning depends on store insertion order; a
        newcomer must learn the exact same infos from both planes."""
        results = []
        for batched in (True, False):
            net = _build_mixed(batched)
            net.run_convergence_rounds(rounds=2)
            newcomer = net.add_router(do_bootstrap=False)
            newcomer.known_floodfills.update(net.floodfill_hashes())
            net.explore(newcomer.hash, lookups=3)
            results.append(sorted(newcomer.store.router_hashes()))
        assert results[0] == results[1]


class TestReplayFastPath:
    def test_replay_engages_in_steady_state(self):
        net = _build_mixed(True)
        net.run_convergence_rounds(rounds=3)
        baseline = net.publish_all()
        replays_before = net.plane_stats["replay_rounds"]
        for _ in range(4):
            net.clock.advance_hours(0.25)
            delivered = net.publish_all()
            # Replay rounds deliver the identical message count.
            assert delivered == baseline
        assert net.plane_stats["replay_rounds"] >= replays_before + 2

    def test_replay_preserves_store_statistics(self):
        """A replayed round refreshes each unique (store, hash) pair once
        and rejects the duplicates stale — same accounting as a slow
        round, with zero new acceptances."""
        net = _build_mixed(True)
        net.run_convergence_rounds(rounds=3)
        net.clock.advance_hours(0.25)
        net.publish_all()  # build round (or earlier replay)
        net.clock.advance_hours(0.25)
        before = {
            h: r.store.stats.as_dict() for h, r in net.routers.items()
        }
        replays_before = net.plane_stats["replay_rounds"]
        net.publish_all()
        assert net.plane_stats["replay_rounds"] == replays_before + 1
        for router_hash, router in net.routers.items():
            after = router.store.stats.as_dict()
            assert after["stores_accepted"] == before[router_hash]["stores_accepted"]
            assert (
                after["stores_refreshed"] + after["stores_rejected_stale"]
                > before[router_hash]["stores_refreshed"]
                + before[router_hash]["stores_rejected_stale"]
            )

    def test_stale_republish_never_replays(self):
        """A same-now republish is not fresh and must take the slow path
        (every write is stale-rejected, not refreshed)."""
        net = _build_mixed(True)
        net.run_convergence_rounds(rounds=3)
        net.clock.advance_hours(0.25)
        net.publish_all()
        net.clock.advance_hours(0.25)
        net.publish_all()
        replays = net.plane_stats["replay_rounds"]
        net.publish_all()  # same simulated instant
        assert net.plane_stats["replay_rounds"] == replays


class TestSteadyStateChurn:
    def test_caches_and_expiry_stay_flat(self):
        """Once converged, stepped publish rounds run with zero cache
        rebuilds, zero expirations, and every round replayed (which
        itself proves no store removal happened in between).  Expiry
        scans are not strictly zero — each floodfill store performs one
        removal-free ``_min_published`` tightening scan per simulated
        hour — but they must stay bounded by the store count, never
        O(stores) per round."""
        net = _build_mixed(True)
        net.run_convergence_rounds(rounds=4)
        # Drain the expiry residue of the pre-convergence rounds.
        for _ in range(6):
            net.step_hours(0.25)
            net.publish_all()
        churn_before = dict(net.plane_stats)
        scans_before = sum(r.store.expiry_scan_passes for r in net.routers.values())
        removed_before = sum(r.store.stats.expirations for r in net.routers.values())
        for _ in range(3):
            net.step_hours(0.25)
            net.publish_all()
        churn_after = dict(net.plane_stats)
        scans_after = sum(r.store.expiry_scan_passes for r in net.routers.values())
        removed_after = sum(r.store.stats.expirations for r in net.routers.values())
        assert churn_after["ff_view_rebuilds"] == churn_before["ff_view_rebuilds"]
        assert churn_after["flood_table_rebuilds"] == churn_before["flood_table_rebuilds"]
        assert churn_after["replay_rounds"] == churn_before["replay_rounds"] + 3
        assert removed_after == removed_before
        assert scans_after - scans_before <= len(net.routers)

    def test_ip_allocation_is_arithmetic(self):
        """_allocate_ip derives the address from a counter — adding many
        routers must not allocate per-router scratch state beyond the
        router itself (unique IPs prove the arithmetic stays collision
        free)."""
        net = I2PNetwork(seed=21)
        routers = net.batch_add_routers(300)
        ips = {router.ip for router in routers}
        assert len(ips) == 300


class TestZeroFaultPlanEquivalence:
    """An all-zero FaultPlan must be indistinguishable from no plan at
    all: identical netDb end states, replay fast path untouched."""

    @pytest.mark.parametrize("batched", [True, False])
    def test_noop_plan_is_byte_identical(self, batched):
        plain = _build_mixed(batched)
        faulted = _build_mixed(batched, fault_plan=FaultPlan())
        for net in (plain, faulted):
            net.run_convergence_rounds(rounds=3)
            for _ in range(3):
                net.clock.advance_hours(0.25)
                net.publish_all()
        assert faulted.faults is None  # noop plans never build an injector
        assert _netdb_state(plain) == _netdb_state(faulted)

    def test_noop_plan_keeps_the_replay_fast_path(self):
        net = _build_mixed(True, fault_plan=FaultPlan())
        net.run_convergence_rounds(rounds=3)
        for _ in range(4):
            net.clock.advance_hours(0.25)
            net.publish_all()
        assert net.plane_stats["replay_rounds"] >= 2

    def test_attaching_a_noop_plan_mid_run_changes_nothing(self):
        plain = _build_mixed(True)
        faulted = _build_mixed(True)
        for net in (plain, faulted):
            net.run_convergence_rounds(rounds=2)
        faulted.set_fault_plan(FaultPlan())
        for net in (plain, faulted):
            net.clock.advance_hours(0.25)
            net.publish_all()
        assert _netdb_state(plain) == _netdb_state(faulted)

    def test_detaching_a_real_plan_clears_the_replay_cache(self):
        """set_fault_plan must invalidate memoised replay state in both
        directions — stale fault-free structure must never replay under a
        plan, nor vice versa."""
        net = _build_mixed(True)
        net.run_convergence_rounds(rounds=3)
        for _ in range(3):
            net.clock.advance_hours(0.25)
            net.publish_all()
        assert net.plane_stats["replay_rounds"] >= 1
        net.set_fault_plan(FaultPlan(drop_probability=0.01, seed=4))
        assert net._replay is None
        net.clock.advance_hours(0.25)
        net.publish_all()
        net.set_fault_plan(None)
        assert net._replay is None
        replays_before = net.plane_stats["replay_rounds"]
        # The fault-free plane resumes and reaches replay again.
        for _ in range(4):
            net.clock.advance_hours(0.25)
            net.publish_all()
        assert net.plane_stats["replay_rounds"] > replays_before


@pytest.mark.parametrize("seed", [15, 99])
def test_bench_sized_equivalence(seed):
    """The benchmark configuration (10% O-tier floodfills) converges to
    identical end states on both planes."""
    nets = []
    for batched in (True, False):
        net = I2PNetwork(seed=seed, batched=batched)
        for _ in range(8):
            net.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
        net.batch_add_routers(72)
        net.run_convergence_rounds(rounds=2)
        nets.append(net)
    assert _netdb_state(nets[0]) == _netdb_state(nets[1])
