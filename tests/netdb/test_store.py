"""Tests for the per-router netDb store and its expiry semantics."""

import pytest

from repro.netdb.identity import RouterIdentity, sha256
from repro.netdb.leaseset import Destination, Lease, LeaseSet
from repro.netdb.routerinfo import RouterAddress, RouterInfo, TransportStyle, parse_capacity_string
from repro.netdb.store import (
    FLOODFILL_ROUTERINFO_EXPIRY,
    ROUTERINFO_EXPIRY,
    NetDbStore,
)


def make_info(seed: str, published_at: float = 0.0) -> RouterInfo:
    return RouterInfo(
        identity=RouterIdentity.from_seed(seed),
        addresses=(RouterAddress(TransportStyle.NTCP, "1.2.3.4", 12345),),
        capacity=parse_capacity_string("LR"),
        published_at=published_at,
    )


def make_leaseset(seed: str, expires_at: float, published_at: float = 0.0) -> LeaseSet:
    return LeaseSet(
        destination=Destination(RouterIdentity.from_seed(seed)),
        leases=(Lease(sha256(b"gw"), 1, expires_at),),
        published_at=published_at,
    )


class TestRouterInfoStorage:
    def test_store_and_get(self):
        store = NetDbStore()
        info = make_info("a")
        assert store.store_routerinfo(info)
        assert store.get_routerinfo(info.hash) == info
        assert info.hash in store
        assert len(store) == 1

    def test_newer_replaces_older(self):
        store = NetDbStore()
        old = make_info("a", published_at=10.0)
        new = make_info("a", published_at=20.0)
        store.store_routerinfo(old)
        assert store.store_routerinfo(new)
        assert store.get_routerinfo(old.hash).published_at == 20.0
        assert store.stats.stores_refreshed == 1

    def test_stale_rejected(self):
        store = NetDbStore()
        store.store_routerinfo(make_info("a", published_at=20.0))
        assert not store.store_routerinfo(make_info("a", published_at=10.0))
        assert store.stats.stores_rejected_stale == 1

    def test_remove(self):
        store = NetDbStore()
        info = make_info("a")
        store.store_routerinfo(info)
        assert store.remove_routerinfo(info.hash)
        assert not store.remove_routerinfo(info.hash)

    def test_clear_routerinfos(self):
        store = NetDbStore()
        for i in range(5):
            store.store_routerinfo(make_info(f"p{i}"))
        assert store.clear_routerinfos() == 5
        assert len(store) == 0

    def test_merge(self):
        a = NetDbStore()
        b = NetDbStore()
        a.store_routerinfo(make_info("x"))
        b.store_routerinfo(make_info("y"))
        b.store_routerinfo(make_info("x"))
        merged = a.merge(b)
        assert merged == 1  # only "y" was new
        assert len(a) == 2

    def test_snapshot_is_immutable_copy(self):
        store = NetDbStore()
        store.store_routerinfo(make_info("a"))
        snapshot = store.snapshot()
        store.store_routerinfo(make_info("b"))
        assert len(snapshot) == 1


class TestExpiry:
    def test_floodfill_expiry_is_one_hour(self):
        assert NetDbStore(floodfill=True).routerinfo_expiry == FLOODFILL_ROUTERINFO_EXPIRY
        assert NetDbStore(floodfill=False).routerinfo_expiry == ROUTERINFO_EXPIRY
        assert FLOODFILL_ROUTERINFO_EXPIRY == 3600.0

    def test_floodfill_expires_old_entries(self):
        store = NetDbStore(floodfill=True)
        store.store_routerinfo(make_info("old", published_at=0.0))
        store.store_routerinfo(make_info("new", published_at=3000.0))
        removed = store.expire(now=3700.0)
        assert removed == 1
        assert len(store) == 1

    def test_non_floodfill_keeps_entries_longer(self):
        store = NetDbStore(floodfill=False)
        store.store_routerinfo(make_info("old", published_at=0.0))
        assert store.expire(now=3700.0) == 0
        assert store.expire(now=ROUTERINFO_EXPIRY + 1) == 1

    def test_custom_expiry_override(self):
        store = NetDbStore(routerinfo_expiry=10.0)
        store.store_routerinfo(make_info("a", published_at=0.0))
        assert store.expire(now=11.0) == 1

    def test_leaseset_expiry(self):
        store = NetDbStore()
        store.store_leaseset(make_leaseset("site", expires_at=100.0))
        assert store.leaseset_count() == 1
        store.expire(now=101.0)
        assert store.leaseset_count() == 0
        assert store.stats.leaseset_expirations == 1


class TestLeaseSetStorage:
    def test_store_and_get(self):
        store = NetDbStore()
        ls = make_leaseset("site", expires_at=500.0)
        assert store.store_leaseset(ls)
        assert store.get_leaseset(ls.hash) == ls

    def test_older_leaseset_rejected(self):
        store = NetDbStore()
        store.store_leaseset(make_leaseset("site", 500.0, published_at=10.0))
        assert not store.store_leaseset(make_leaseset("site", 600.0, published_at=5.0))

    def test_stats_dict(self):
        store = NetDbStore()
        store.store_routerinfo(make_info("a"))
        stats = store.stats.as_dict()
        assert stats["stores_accepted"] == 1
        assert set(stats) >= {"expirations", "leaseset_stores"}
