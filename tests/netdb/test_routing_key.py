"""Tests for the daily-rotating routing keys (Section 2.1.2)."""

import datetime

import pytest

from repro.netdb.identity import sha256
from repro.netdb.routing_key import (
    SECONDS_PER_DAY,
    SIMULATION_EPOCH,
    _KEY_CACHE,
    _KEY_CACHE_MAX_DATES,
    clear_routing_key_cache,
    date_string_for_time,
    keys_rotate_between,
    routing_key,
    select_closest,
)


class TestDateString:
    def test_epoch_is_campaign_start(self):
        assert date_string_for_time(0.0) == "20180201"

    def test_advances_at_midnight(self):
        assert date_string_for_time(SECONDS_PER_DAY - 1) == "20180201"
        assert date_string_for_time(SECONDS_PER_DAY) == "20180202"

    def test_month_rollover(self):
        assert date_string_for_time(28 * SECONDS_PER_DAY) == "20180301"


class TestRoutingKey:
    def test_requires_32_byte_key(self):
        with pytest.raises(ValueError):
            routing_key(b"short", 0.0)

    def test_same_day_same_key(self):
        key = sha256(b"peer")
        assert routing_key(key, 100.0) == routing_key(key, 50_000.0)

    def test_rotates_daily(self):
        key = sha256(b"peer")
        assert routing_key(key, 0.0) != routing_key(key, SECONDS_PER_DAY)

    def test_differs_per_key(self):
        assert routing_key(sha256(b"a"), 0.0) != routing_key(sha256(b"b"), 0.0)

    def test_rotation_detection(self):
        assert not keys_rotate_between(0.0, SECONDS_PER_DAY - 1)
        assert keys_rotate_between(0.0, SECONDS_PER_DAY)


class TestSelectClosest:
    def test_returns_requested_count(self):
        target = routing_key(sha256(b"target"), 0.0)
        candidates = [sha256(f"c{i}".encode()) for i in range(20)]
        assert len(select_closest(target, candidates, 3, 0.0)) == 3

    def test_fewer_candidates_than_requested(self):
        target = routing_key(sha256(b"target"), 0.0)
        candidates = [sha256(b"only")]
        assert select_closest(target, candidates, 5, 0.0) == candidates

    def test_zero_count(self):
        target = routing_key(sha256(b"target"), 0.0)
        assert select_closest(target, [sha256(b"x")], 0, 0.0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            select_closest(routing_key(sha256(b"t"), 0.0), [], -1, 0.0)

    def test_deterministic_ordering(self):
        target = routing_key(sha256(b"target"), 0.0)
        candidates = [sha256(f"c{i}".encode()) for i in range(30)]
        first = select_closest(target, candidates, 5, 0.0)
        second = select_closest(target, list(reversed(candidates)), 5, 0.0)
        assert first == second

    def test_selection_changes_across_days(self):
        """The closest floodfills to a key change when the keyspace rotates."""
        target_hash = sha256(b"target")
        candidates = [sha256(f"c{i}".encode()) for i in range(200)]
        day0 = select_closest(routing_key(target_hash, 0.0), candidates, 3, 0.0)
        day1 = select_closest(
            routing_key(target_hash, SECONDS_PER_DAY), candidates, 3, SECONDS_PER_DAY
        )
        assert day0 != day1


class TestRoutingKeyCache:
    """The memoised routing keys must stay correct across UTC day rotation."""

    def setup_method(self) -> None:
        clear_routing_key_cache()

    def test_cached_key_matches_uncached_computation(self):
        key = sha256(b"cached-peer")
        for sim_time in (0.0, 1.0, 43_200.0, SECONDS_PER_DAY - 1):
            expected = sha256(key + date_string_for_time(sim_time).encode("ascii"))
            assert routing_key(key, sim_time) == expected
            # Second call is the cache hit — identical bytes.
            assert routing_key(key, sim_time) == expected

    def test_cache_respects_day_rotation(self):
        key = sha256(b"rotating-peer")
        morning = routing_key(key, 100.0)
        # Prime the cache on day 0, then cross UTC midnight: the cached
        # day-0 value must not leak into day 1.
        assert routing_key(key, SECONDS_PER_DAY - 1.0) == morning
        next_day = routing_key(key, SECONDS_PER_DAY + 1.0)
        assert next_day != morning
        assert keys_rotate_between(SECONDS_PER_DAY - 1.0, SECONDS_PER_DAY + 1.0)
        assert next_day == sha256(
            key + date_string_for_time(SECONDS_PER_DAY + 1.0).encode("ascii")
        )
        # And going back to a day-0 timestamp recomputes the day-0 key.
        assert routing_key(key, 200.0) == morning

    def test_cache_evicts_stale_dates(self):
        key = sha256(b"evicted-peer")
        for day in range(6):
            routing_key(key, day * SECONDS_PER_DAY + 10.0)
        cached_dates = {date for _, date in _KEY_CACHE}
        assert len(cached_dates) <= _KEY_CACHE_MAX_DATES

    def test_date_string_memoisation_is_consistent(self):
        for day in range(-2, 40):
            sim_time = day * SECONDS_PER_DAY + 7.5
            fresh = (
                SIMULATION_EPOCH + datetime.timedelta(seconds=sim_time)
            ).strftime("%Y%m%d")
            assert date_string_for_time(sim_time) == fresh
