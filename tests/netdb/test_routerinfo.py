"""Tests for RouterInfo, capacity flags, and the Section 5.1 classification."""

import pytest

from repro.netdb.identity import RouterIdentity
from repro.netdb.routerinfo import (
    FLOODFILL_MIN_KBPS,
    QUALIFIED_FLOODFILL_TIERS,
    BandwidthTier,
    CapacityFlags,
    Introducer,
    RouterAddress,
    RouterInfo,
    TransportStyle,
    parse_capacity_string,
)


def make_routerinfo(addresses=(), caps="LR", published_at=0.0, seed="peer"):
    return RouterInfo(
        identity=RouterIdentity.from_seed(seed),
        addresses=tuple(addresses),
        capacity=parse_capacity_string(caps),
        published_at=published_at,
    )


class TestBandwidthTier:
    def test_for_bandwidth_boundaries(self):
        assert BandwidthTier.for_bandwidth(0) is BandwidthTier.K
        assert BandwidthTier.for_bandwidth(11.9) is BandwidthTier.K
        assert BandwidthTier.for_bandwidth(12) is BandwidthTier.L
        assert BandwidthTier.for_bandwidth(47.9) is BandwidthTier.L
        assert BandwidthTier.for_bandwidth(48) is BandwidthTier.M
        assert BandwidthTier.for_bandwidth(64) is BandwidthTier.N
        assert BandwidthTier.for_bandwidth(128) is BandwidthTier.O
        assert BandwidthTier.for_bandwidth(256) is BandwidthTier.P
        assert BandwidthTier.for_bandwidth(2000) is BandwidthTier.X
        assert BandwidthTier.for_bandwidth(50000) is BandwidthTier.X

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTier.for_bandwidth(-1)

    def test_ordered_has_all_seven(self):
        assert len(BandwidthTier.ordered()) == 7
        assert BandwidthTier.ordered()[0] is BandwidthTier.K
        assert BandwidthTier.ordered()[-1] is BandwidthTier.X

    def test_floodfill_minimum_matches_n_tier(self):
        assert BandwidthTier.for_bandwidth(FLOODFILL_MIN_KBPS - 1) is BandwidthTier.N
        assert BandwidthTier.N in QUALIFIED_FLOODFILL_TIERS
        assert BandwidthTier.L not in QUALIFIED_FLOODFILL_TIERS


class TestCapacityFlags:
    def test_parse_reachable_floodfill(self):
        caps = parse_capacity_string("OfR")
        assert caps.floodfill
        assert caps.reachable
        assert not caps.unreachable
        assert caps.primary_tier is BandwidthTier.O

    def test_parse_multi_tier_picks_highest(self):
        caps = parse_capacity_string("OPfR")
        assert caps.primary_tier is BandwidthTier.P
        assert BandwidthTier.O in caps.tiers

    def test_parse_unreachable(self):
        caps = parse_capacity_string("LU")
        assert caps.unreachable
        assert not caps.reachable

    def test_parse_requires_tier(self):
        with pytest.raises(ValueError):
            parse_capacity_string("fR")

    def test_round_trip_string(self):
        assert parse_capacity_string("XfU").as_string() == "XfU"
        assert parse_capacity_string("LR").as_string() == "LR"

    def test_both_reachable_and_unreachable_rejected(self):
        with pytest.raises(ValueError):
            CapacityFlags(
                tiers=(BandwidthTier.L,), floodfill=False, reachable=True, unreachable=True
            )

    def test_unknown_characters_ignored(self):
        caps = parse_capacity_string("L?zR")
        assert caps.primary_tier is BandwidthTier.L
        assert caps.reachable


class TestRouterAddress:
    def test_direct_address(self):
        addr = RouterAddress(TransportStyle.NTCP, "1.2.3.4", 12345)
        assert addr.is_direct
        assert not addr.is_ipv6

    def test_ipv6_detection(self):
        addr = RouterAddress(TransportStyle.NTCP, "2a01:4f8::1", 12345)
        assert addr.is_ipv6

    def test_invalid_port_rejected(self):
        with pytest.raises(ValueError):
            RouterAddress(TransportStyle.NTCP, "1.2.3.4", 0)

    def test_firewalled_address_not_direct(self):
        introducer = Introducer(b"\x01" * 32, "5.6.7.8", 9999, 42)
        addr = RouterAddress(TransportStyle.SSU, None, None, introducers=(introducer,))
        assert not addr.is_direct
        assert addr.introducers


class TestIntroducer:
    def test_valid(self):
        intro = Introducer(b"\x02" * 32, "9.9.9.9", 10001, 7)
        assert intro.port == 10001

    def test_invalid_hash_length(self):
        with pytest.raises(ValueError):
            Introducer(b"\x02" * 16, "9.9.9.9", 10001, 7)

    def test_negative_tag(self):
        with pytest.raises(ValueError):
            Introducer(b"\x02" * 32, "9.9.9.9", 10001, -1)


class TestRouterInfoClassification:
    def test_public_peer(self):
        info = make_routerinfo(
            [RouterAddress(TransportStyle.NTCP, "1.2.3.4", 11111)], caps="LR"
        )
        assert info.has_valid_ip
        assert not info.is_firewalled
        assert not info.is_hidden
        assert info.ip_addresses == ("1.2.3.4",)

    def test_firewalled_peer(self):
        introducer = Introducer(b"\x03" * 32, "5.6.7.8", 2222, 1)
        info = make_routerinfo(
            [RouterAddress(TransportStyle.SSU, None, None, introducers=(introducer,))],
            caps="LU",
        )
        assert not info.has_valid_ip
        assert info.is_firewalled
        assert not info.is_hidden
        assert len(info.introducers) == 1

    def test_hidden_peer(self):
        info = make_routerinfo([], caps="LU")
        assert info.is_hidden
        assert not info.is_firewalled
        assert not info.has_valid_ip

    def test_ipv4_ipv6_split(self):
        info = make_routerinfo(
            [
                RouterAddress(TransportStyle.NTCP, "1.2.3.4", 11111),
                RouterAddress(TransportStyle.NTCP, "2a01:db8::1", 11111),
            ]
        )
        assert info.ipv4_addresses == ("1.2.3.4",)
        assert info.ipv6_addresses == ("2a01:db8::1",)

    def test_duplicate_ips_deduplicated(self):
        info = make_routerinfo(
            [
                RouterAddress(TransportStyle.NTCP, "1.2.3.4", 11111),
                RouterAddress(TransportStyle.SSU, "1.2.3.4", 11111),
            ]
        )
        assert info.ip_addresses == ("1.2.3.4",)

    def test_floodfill_and_tier_properties(self):
        info = make_routerinfo(
            [RouterAddress(TransportStyle.NTCP, "1.2.3.4", 11111)], caps="NfR"
        )
        assert info.is_floodfill
        assert info.is_reachable
        assert info.bandwidth_tier is BandwidthTier.N

    def test_republished_updates_timestamp_only(self):
        info = make_routerinfo(
            [RouterAddress(TransportStyle.NTCP, "1.2.3.4", 11111)], published_at=10.0
        )
        newer = info.republished(published_at=99.0)
        assert newer.published_at == 99.0
        assert newer.hash == info.hash
        assert newer.addresses == info.addresses

    def test_with_addresses(self):
        info = make_routerinfo([RouterAddress(TransportStyle.NTCP, "1.2.3.4", 1111)])
        moved = info.with_addresses(
            [RouterAddress(TransportStyle.NTCP, "4.3.2.1", 2222)], published_at=5.0
        )
        assert moved.ip_addresses == ("4.3.2.1",)
        assert moved.published_at == 5.0

    def test_summary_mentions_address_or_status(self):
        public = make_routerinfo([RouterAddress(TransportStyle.NTCP, "1.2.3.4", 1111)])
        hidden = make_routerinfo([], caps="LU", seed="other")
        assert "1.2.3.4" in public.summary()
        assert "hidden" in hidden.summary()

    def test_option_dict(self):
        info = RouterInfo(
            identity=RouterIdentity.from_seed("opt"),
            addresses=(),
            capacity=parse_capacity_string("LU"),
            published_at=0.0,
            options=(("router.version", "0.9.34"),),
        )
        assert info.option_dict["router.version"] == "0.9.34"
