"""Tests for floodfill store/flood/lookup behaviour."""

import pytest

from repro.netdb.floodfill import (
    FLOOD_REDUNDANCY,
    FloodfillHealth,
    FloodfillRouterState,
    is_qualified_floodfill,
)
from repro.netdb.identity import RouterIdentity, sha256
from repro.netdb.messages import (
    DatabaseLookupMessage,
    DatabaseSearchReplyMessage,
    DatabaseStoreMessage,
    LookupType,
)
from repro.netdb.routerinfo import RouterAddress, RouterInfo, TransportStyle, parse_capacity_string


def make_info(seed: str, caps: str = "LR") -> RouterInfo:
    return RouterInfo(
        identity=RouterIdentity.from_seed(seed),
        addresses=(RouterAddress(TransportStyle.NTCP, "10.0.0.1", 12345),),
        capacity=parse_capacity_string(caps),
        published_at=1.0,
    )


def make_floodfill(seed: str = "ff", known=()) -> FloodfillRouterState:
    return FloodfillRouterState(
        router_hash=RouterIdentity.from_seed(seed).hash, known_floodfills=known
    )


class TestQualifiedFloodfill:
    def test_n_floodfill_qualified(self):
        assert is_qualified_floodfill(make_info("a", "NfR"))

    def test_l_floodfill_unqualified(self):
        assert not is_qualified_floodfill(make_info("a", "LfR"))

    def test_non_floodfill_never_qualified(self):
        assert not is_qualified_floodfill(make_info("a", "XR"))


class TestFloodfillHealth:
    def test_passing_profile(self):
        health = FloodfillHealth(
            uptime_hours=5, shared_bandwidth_kbps=256, message_queue_delay_ms=50,
            job_lag_ms=50, tunnel_build_success=0.9,
        )
        assert health.passes()
        assert health.failing_checks() == []

    def test_low_bandwidth_fails(self):
        health = FloodfillHealth(uptime_hours=5, shared_bandwidth_kbps=64)
        assert not health.passes()
        assert "bandwidth" in health.failing_checks()

    def test_low_uptime_fails(self):
        health = FloodfillHealth(uptime_hours=0.5, shared_bandwidth_kbps=256)
        assert "uptime" in health.failing_checks()

    def test_all_failing(self):
        health = FloodfillHealth(
            uptime_hours=0, shared_bandwidth_kbps=0,
            message_queue_delay_ms=10_000, job_lag_ms=10_000, tunnel_build_success=0.0,
        )
        assert len(health.failing_checks()) == 5


class TestStoreHandling:
    def test_store_accepts_new_entry(self):
        ff = make_floodfill()
        message = DatabaseStoreMessage(
            from_hash=sha256(b"sender"), entry=make_info("peer"), reply_token=1
        )
        result = ff.handle_store(message, sim_time=0.0)
        assert result.stored
        assert make_info("peer").hash in ff.store

    def test_flooding_only_with_reply_token(self):
        known = [RouterIdentity.from_seed(f"other-ff-{i}").hash for i in range(6)]
        ff = make_floodfill(known=known)
        direct = DatabaseStoreMessage(
            from_hash=sha256(b"sender"), entry=make_info("peer"), reply_token=1
        )
        result = ff.handle_store(direct, sim_time=0.0)
        assert len(result.flooded_to) == FLOOD_REDUNDANCY

        flooded = DatabaseStoreMessage(
            from_hash=sha256(b"other"), entry=make_info("peer2"), reply_token=0
        )
        result2 = ff.handle_store(flooded, sim_time=0.0)
        assert result2.flooded_to == ()

    def test_duplicate_store_not_flooded_again(self):
        known = [RouterIdentity.from_seed(f"other-ff-{i}").hash for i in range(6)]
        ff = make_floodfill(known=known)
        message = DatabaseStoreMessage(
            from_hash=sha256(b"sender"), entry=make_info("peer"), reply_token=1
        )
        ff.handle_store(message, sim_time=0.0)
        repeat = DatabaseStoreMessage(
            from_hash=sha256(b"sender"), entry=make_info("peer"), reply_token=1
        )
        result = ff.handle_store(repeat, sim_time=0.0)
        assert not result.stored
        assert result.flooded_to == ()

    def test_flood_targets_limited_to_known(self):
        known = [RouterIdentity.from_seed("one-ff").hash]
        ff = make_floodfill(known=known)
        targets = ff.flood_targets(sha256(b"key"), sim_time=0.0)
        assert targets == known


class TestLookupHandling:
    def test_known_routerinfo_returned_as_store(self):
        ff = make_floodfill()
        info = make_info("peer")
        ff.store.store_routerinfo(info)
        lookup = DatabaseLookupMessage(from_hash=sha256(b"me"), key=info.hash)
        response = ff.handle_lookup(lookup, sim_time=0.0)
        assert isinstance(response, DatabaseStoreMessage)
        assert response.entry.hash == info.hash

    def test_unknown_key_returns_closer_floodfills(self):
        known = [RouterIdentity.from_seed(f"ff-{i}").hash for i in range(10)]
        ff = make_floodfill(known=known)
        lookup = DatabaseLookupMessage(from_hash=sha256(b"me"), key=sha256(b"missing"))
        response = ff.handle_lookup(lookup, sim_time=0.0)
        assert isinstance(response, DatabaseSearchReplyMessage)
        assert 0 < len(response.closer_hashes) <= 3
        assert all(h in known for h in response.closer_hashes)

    def test_closer_reply_excludes_requested(self):
        known = [RouterIdentity.from_seed(f"ff-{i}").hash for i in range(4)]
        ff = make_floodfill(known=known)
        lookup = DatabaseLookupMessage(
            from_hash=sha256(b"me"), key=sha256(b"missing"), exclude_hashes=tuple(known[:2])
        )
        response = ff.handle_lookup(lookup, sim_time=0.0)
        assert isinstance(response, DatabaseSearchReplyMessage)
        assert not set(response.closer_hashes) & set(known[:2])

    def test_exploration_returns_unknown_routerinfos(self):
        ff = make_floodfill()
        infos = [make_info(f"peer-{i}") for i in range(5)]
        for info in infos:
            ff.store.store_routerinfo(info)
        lookup = DatabaseLookupMessage(
            from_hash=sha256(b"me"),
            key=sha256(b"me"),
            lookup_type=LookupType.EXPLORATION,
            exclude_hashes=(infos[0].hash,),
            max_results=3,
        )
        response = ff.handle_lookup(lookup, sim_time=0.0)
        assert isinstance(response, list)
        assert len(response) == 3
        assert infos[0].hash not in {r.hash for r in response}


class TestResponsibility:
    def test_responsible_when_among_closest(self):
        ff = make_floodfill("me")
        all_ffs = [ff.router_hash] + [
            RouterIdentity.from_seed(f"ff-{i}").hash for i in range(2)
        ]
        assert ff.is_responsible_for(sha256(b"key"), all_ffs, sim_time=0.0)

    def test_not_responsible_in_large_pool(self):
        ff = make_floodfill("me")
        all_ffs = [RouterIdentity.from_seed(f"ff-{i}").hash for i in range(500)]
        # With 500 other floodfills the chance of being in the top-3 for an
        # arbitrary key is tiny; check a handful of keys.
        responsibilities = [
            ff.is_responsible_for(sha256(f"key-{i}".encode()), all_ffs, sim_time=0.0)
            for i in range(5)
        ]
        assert not all(responsibilities)

    def test_learn_and_forget_floodfill(self):
        ff = make_floodfill("me")
        other = RouterIdentity.from_seed("other").hash
        ff.learn_floodfill(other)
        assert other in ff.known_floodfills
        ff.forget_floodfill(other)
        assert other not in ff.known_floodfills

    def test_never_learns_itself(self):
        ff = make_floodfill("me")
        ff.learn_floodfill(ff.router_hash)
        assert ff.router_hash not in ff.known_floodfills
