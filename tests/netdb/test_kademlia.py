"""Tests for the XOR metric, k-buckets, and the routing table."""

import pytest

from repro.netdb.identity import sha256
from repro.netdb.kademlia import (
    KEY_BITS,
    KBucket,
    RoutingTable,
    bucket_index,
    closest_nodes,
    xor_distance,
)


def key(n: int) -> bytes:
    return n.to_bytes(32, "big")


class TestXorDistance:
    def test_identity(self):
        assert xor_distance(key(5), key(5)) == 0

    def test_symmetry(self):
        assert xor_distance(key(5), key(9)) == xor_distance(key(9), key(5))

    def test_known_value(self):
        assert xor_distance(key(0b1010), key(0b0110)) == 0b1100

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_distance(b"\x00" * 32, b"\x00" * 16)

    def test_triangle_inequality_xor_relaxation(self):
        # XOR metric satisfies d(a,c) <= d(a,b) + d(b,c).
        a, b, c = sha256(b"a"), sha256(b"b"), sha256(b"c")
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)


class TestBucketIndex:
    def test_most_significant_bit(self):
        local = key(0)
        assert bucket_index(local, key(1)) == 0
        assert bucket_index(local, key(2)) == 1
        assert bucket_index(local, key(1 << 255)) == KEY_BITS - 1

    def test_own_key_rejected(self):
        with pytest.raises(ValueError):
            bucket_index(key(7), key(7))


class TestClosestNodes:
    def test_orders_by_distance(self):
        target = key(0)
        candidates = [key(8), key(1), key(4), key(2)]
        assert closest_nodes(target, candidates, 2) == [key(1), key(2)]

    def test_count_larger_than_pool(self):
        assert len(closest_nodes(key(0), [key(1)], 10)) == 1

    def test_negative_count(self):
        with pytest.raises(ValueError):
            closest_nodes(key(0), [], -2)


class TestKBucket:
    def test_insertion_and_membership(self):
        bucket = KBucket(capacity=3)
        assert bucket.touch(key(1))
        assert key(1) in bucket
        assert len(bucket) == 1

    def test_lru_refresh(self):
        bucket = KBucket(capacity=3)
        for i in range(1, 4):
            bucket.touch(key(i))
        bucket.touch(key(1))
        assert bucket.oldest() == key(2)

    def test_eviction_when_full(self):
        bucket = KBucket(capacity=2, evict_stale=True)
        bucket.touch(key(1))
        bucket.touch(key(2))
        bucket.touch(key(3))
        assert key(1) not in bucket
        assert key(3) in bucket

    def test_no_eviction_mode(self):
        bucket = KBucket(capacity=2, evict_stale=False)
        bucket.touch(key(1))
        bucket.touch(key(2))
        assert not bucket.touch(key(3))
        assert key(3) not in bucket

    def test_remove(self):
        bucket = KBucket()
        bucket.touch(key(1))
        assert bucket.remove(key(1))
        assert not bucket.remove(key(1))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            KBucket(capacity=0)


class TestRoutingTable:
    def test_requires_32_byte_local_key(self):
        with pytest.raises(ValueError):
            RoutingTable(b"short")

    def test_never_stores_self(self):
        table = RoutingTable(key(1))
        assert not table.add(key(1))
        assert key(1) not in table

    def test_add_and_len(self):
        table = RoutingTable(key(1))
        for i in range(2, 30):
            table.add(key(i))
        assert len(table) == 28

    def test_closest(self):
        table = RoutingTable(key(0))
        for i in range(1, 50):
            table.add(key(i))
        closest = table.closest(key(3), 3)
        assert closest[0] == key(3)
        assert len(closest) == 3

    def test_remove(self):
        table = RoutingTable(key(0))
        table.add(key(5))
        assert table.remove(key(5))
        assert key(5) not in table
        assert not table.remove(key(5))
        assert not table.remove(key(0))

    def test_bucket_sizes_reported(self):
        table = RoutingTable(key(0), bucket_capacity=4)
        for i in range(1, 20):
            table.add(key(i))
        sizes = table.bucket_sizes()
        assert sum(sizes.values()) == len(table)
        assert all(size <= 4 for size in sizes.values())

    def test_all_keys_contains_added(self):
        table = RoutingTable(sha256(b"local"))
        keys = [sha256(f"k{i}".encode()) for i in range(10)]
        for k in keys:
            table.add(k)
        assert set(table.all_keys()) == set(keys)
