"""Tests for destinations, leases, and LeaseSets."""

import pytest

from repro.netdb.identity import RouterIdentity, sha256
from repro.netdb.leaseset import LEASE_DURATION, Destination, Lease, LeaseSet


def make_lease(gateway_seed: str = "gw", expires_at: float = 600.0, tunnel_id: int = 1):
    return Lease(
        gateway_hash=sha256(gateway_seed.encode()),
        tunnel_id=tunnel_id,
        expires_at=expires_at,
    )


class TestDestination:
    def test_hash_from_identity(self):
        dest = Destination(RouterIdentity.from_seed("eepsite"), name="test.i2p")
        assert dest.hash == RouterIdentity.from_seed("eepsite").hash

    def test_b32_address_shape(self):
        dest = Destination(RouterIdentity.from_seed("eepsite"))
        assert dest.b32_address.endswith(".b32.i2p")
        assert dest.b32_address == dest.b32_address.lower()

    def test_b32_address_unique(self):
        a = Destination(RouterIdentity.from_seed("a")).b32_address
        b = Destination(RouterIdentity.from_seed("b")).b32_address
        assert a != b


class TestLease:
    def test_expiry(self):
        lease = make_lease(expires_at=100.0)
        assert not lease.is_expired(99.9)
        assert lease.is_expired(100.0)

    def test_invalid_gateway_hash(self):
        with pytest.raises(ValueError):
            Lease(gateway_hash=b"\x01" * 8, tunnel_id=1, expires_at=10.0)

    def test_negative_tunnel_id(self):
        with pytest.raises(ValueError):
            Lease(gateway_hash=sha256(b"gw"), tunnel_id=-1, expires_at=10.0)


class TestLeaseSet:
    def test_requires_at_least_one_lease(self):
        dest = Destination(RouterIdentity.from_seed("eepsite"))
        with pytest.raises(ValueError):
            LeaseSet(destination=dest, leases=(), published_at=0.0)

    def test_expires_with_last_lease(self):
        dest = Destination(RouterIdentity.from_seed("eepsite"))
        ls = LeaseSet(
            destination=dest,
            leases=(make_lease(expires_at=100.0), make_lease("gw2", 300.0, 2)),
            published_at=0.0,
        )
        assert ls.expires_at == 300.0
        assert not ls.is_expired(299.0)
        assert ls.is_expired(300.0)

    def test_active_leases_filtering(self):
        dest = Destination(RouterIdentity.from_seed("eepsite"))
        ls = LeaseSet(
            destination=dest,
            leases=(make_lease(expires_at=100.0), make_lease("gw2", 300.0, 2)),
            published_at=0.0,
        )
        assert len(ls.active_leases(50.0)) == 2
        assert len(ls.active_leases(150.0)) == 1
        assert len(ls.active_leases(400.0)) == 0

    def test_gateway_hashes(self):
        dest = Destination(RouterIdentity.from_seed("eepsite"))
        ls = LeaseSet(
            destination=dest,
            leases=(make_lease("gw1", 100.0), make_lease("gw2", 300.0, 2)),
            published_at=0.0,
        )
        assert ls.gateway_hashes() == (sha256(b"gw1"), sha256(b"gw2"))
        assert ls.gateway_hashes(now=150.0) == (sha256(b"gw2"),)

    def test_hash_is_destination_hash(self):
        dest = Destination(RouterIdentity.from_seed("eepsite"))
        ls = LeaseSet(destination=dest, leases=(make_lease(),), published_at=0.0)
        assert ls.hash == dest.hash

    def test_lease_duration_matches_tunnel_lifetime(self):
        assert LEASE_DURATION == 600.0
