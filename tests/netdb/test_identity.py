"""Tests for router identities and the I2P base64 alphabet."""

import random

import pytest

from repro.netdb.identity import (
    HASH_LENGTH,
    RouterIdentity,
    from_i2p_base64,
    sha256,
    to_i2p_base64,
)


class TestSha256:
    def test_digest_length(self):
        assert len(sha256(b"hello")) == HASH_LENGTH

    def test_deterministic(self):
        assert sha256(b"abc") == sha256(b"abc")

    def test_different_inputs_differ(self):
        assert sha256(b"abc") != sha256(b"abd")


class TestI2PBase64:
    def test_round_trip(self):
        data = bytes(range(256))
        assert from_i2p_base64(to_i2p_base64(data)) == data

    def test_uses_i2p_alphabet(self):
        # 0xFB-ish byte patterns produce '+'/'/' in standard base64.
        data = b"\xfb\xff\xfe" * 10
        encoded = to_i2p_base64(data)
        assert "+" not in encoded
        assert "/" not in encoded

    def test_empty(self):
        assert to_i2p_base64(b"") == ""
        assert from_i2p_base64("") == b""


class TestRouterIdentity:
    def test_generate_unique(self):
        rng = random.Random(1)
        identities = {RouterIdentity.generate(rng).hash for _ in range(50)}
        assert len(identities) == 50

    def test_generate_deterministic_with_seeded_rng(self):
        a = RouterIdentity.generate(random.Random(42))
        b = RouterIdentity.generate(random.Random(42))
        assert a.hash == b.hash

    def test_from_seed_deterministic(self):
        assert RouterIdentity.from_seed("alice").hash == RouterIdentity.from_seed("alice").hash
        assert RouterIdentity.from_seed("alice").hash != RouterIdentity.from_seed("bob").hash

    def test_from_seed_rejects_empty(self):
        with pytest.raises(ValueError):
            RouterIdentity.from_seed("")

    def test_hash_is_32_bytes(self):
        assert len(RouterIdentity.from_seed("x").hash) == 32

    def test_hash_b64_round_trip(self):
        identity = RouterIdentity.from_seed("peer")
        assert from_i2p_base64(identity.hash_b64) == identity.hash

    def test_short_hash_prefix(self):
        identity = RouterIdentity.from_seed("peer")
        assert identity.hash_b64.startswith(identity.short_hash)
        assert len(identity.short_hash) == 8

    def test_rejects_empty_key_material(self):
        with pytest.raises(ValueError):
            RouterIdentity(b"")

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            RouterIdentity("not-bytes")  # type: ignore[arg-type]

    def test_equality_by_key_material(self):
        assert RouterIdentity(b"abc") == RouterIdentity(b"abc")
        assert RouterIdentity(b"abc") != RouterIdentity(b"abd")

    def test_generate_without_rng_uses_os_entropy(self):
        assert RouterIdentity.generate().hash != RouterIdentity.generate().hash
