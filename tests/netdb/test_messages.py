"""Tests for DSM / DLM / SearchReply messages."""

import pytest

from repro.netdb.identity import RouterIdentity, sha256
from repro.netdb.leaseset import Destination, Lease, LeaseSet
from repro.netdb.messages import (
    DatabaseLookupMessage,
    DatabaseSearchReplyMessage,
    DatabaseStoreMessage,
    LookupType,
    MessageType,
    next_message_id,
)
from repro.netdb.routerinfo import RouterInfo, parse_capacity_string


def make_info(seed: str = "peer") -> RouterInfo:
    return RouterInfo(
        identity=RouterIdentity.from_seed(seed),
        addresses=(),
        capacity=parse_capacity_string("LU"),
        published_at=0.0,
    )


def make_leaseset(seed: str = "site") -> LeaseSet:
    return LeaseSet(
        destination=Destination(RouterIdentity.from_seed(seed)),
        leases=(Lease(sha256(b"gw"), 1, 600.0),),
        published_at=0.0,
    )


class TestMessageIds:
    def test_monotonic_unique(self):
        ids = [next_message_id() for _ in range(100)]
        assert len(set(ids)) == 100
        assert ids == sorted(ids)


class TestDatabaseStoreMessage:
    def test_routerinfo_store(self):
        info = make_info()
        dsm = DatabaseStoreMessage(from_hash=sha256(b"sender"), entry=info, reply_token=1)
        assert dsm.type is MessageType.DATABASE_STORE
        assert dsm.is_routerinfo
        assert not dsm.is_leaseset
        assert dsm.key == info.hash
        assert dsm.wants_reply

    def test_leaseset_store(self):
        dsm = DatabaseStoreMessage(from_hash=sha256(b"sender"), entry=make_leaseset())
        assert dsm.is_leaseset
        assert not dsm.wants_reply

    def test_invalid_from_hash(self):
        with pytest.raises(ValueError):
            DatabaseStoreMessage(from_hash=b"short", entry=make_info())

    def test_negative_reply_token(self):
        with pytest.raises(ValueError):
            DatabaseStoreMessage(from_hash=sha256(b"s"), entry=make_info(), reply_token=-1)

    def test_unique_message_ids(self):
        a = DatabaseStoreMessage(from_hash=sha256(b"s"), entry=make_info())
        b = DatabaseStoreMessage(from_hash=sha256(b"s"), entry=make_info())
        assert a.message_id != b.message_id


class TestDatabaseLookupMessage:
    def test_defaults(self):
        dlm = DatabaseLookupMessage(from_hash=sha256(b"me"), key=sha256(b"target"))
        assert dlm.type is MessageType.DATABASE_LOOKUP
        assert dlm.lookup_type is LookupType.ROUTERINFO
        assert dlm.max_results == 16

    def test_exclusion(self):
        excluded = sha256(b"ff1")
        dlm = DatabaseLookupMessage(
            from_hash=sha256(b"me"), key=sha256(b"t"), exclude_hashes=(excluded,)
        )
        assert dlm.excludes(excluded)
        assert not dlm.excludes(sha256(b"other"))

    def test_invalid_key(self):
        with pytest.raises(ValueError):
            DatabaseLookupMessage(from_hash=sha256(b"me"), key=b"tiny")

    def test_invalid_excluded_hash(self):
        with pytest.raises(ValueError):
            DatabaseLookupMessage(
                from_hash=sha256(b"me"), key=sha256(b"t"), exclude_hashes=(b"bad",)
            )

    def test_invalid_max_results(self):
        with pytest.raises(ValueError):
            DatabaseLookupMessage(from_hash=sha256(b"me"), key=sha256(b"t"), max_results=0)

    def test_exploration_type(self):
        dlm = DatabaseLookupMessage(
            from_hash=sha256(b"me"), key=sha256(b"me"), lookup_type=LookupType.EXPLORATION
        )
        assert dlm.lookup_type is LookupType.EXPLORATION


class TestDatabaseSearchReplyMessage:
    def test_basic(self):
        reply = DatabaseSearchReplyMessage(
            from_hash=sha256(b"ff"),
            key=sha256(b"target"),
            closer_hashes=(sha256(b"a"), sha256(b"b")),
        )
        assert reply.type is MessageType.DATABASE_SEARCH_REPLY
        assert len(reply.closer_hashes) == 2

    def test_invalid_closer_hash(self):
        with pytest.raises(ValueError):
            DatabaseSearchReplyMessage(
                from_hash=sha256(b"ff"), key=sha256(b"t"), closer_hashes=(b"oops",)
            )
