"""Kill-and-resume integration: hard-interrupt a real `repro grid run`.

These tests drive the installed CLI in subprocesses (not in-process calls)
so the SIGTERM handler, the queue's crash-safe claims, and the exposure
engine's flush-on-interrupt are exercised exactly as a user would hit them.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

AXIS = "params.fractions=0.2:0.5,0.3:0.6,0.4:0.8,0.5:1"


def service_env(tmp_path, tag, **extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(tmp_path / tag / "exposure-cache")
    env["REPRO_SERVICE_DB"] = str(tmp_path / tag / "service.sqlite")
    env.pop("REPRO_GRID_JOB_DELAY", None)
    env.pop("REPRO_GRID_WORKERS", None)
    env.update(extra)
    return env


def repro(args, env, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        **kwargs,
    )


def plan_sweep(env, extra_args=()):
    proc = repro(
        [
            "--scale", "0.02",
            "grid", "plan", "monitor_fraction_sweep",
            "--axis", AXIS,
            "--days", "2",
            *extra_args,
        ],
        env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc


def job_states(db_path):
    with sqlite3.connect(db_path) as conn:
        rows = conn.execute(
            "SELECT name, state, attempts, run_id FROM jobs ORDER BY name"
        ).fetchall()
    return {name: {"state": state, "attempts": attempts, "run_id": run_id}
            for name, state, attempts, run_id in rows}


def export_bytes(env):
    proc = repro(["results", "export"], env)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.encode("utf-8")


def telemetry_records(env):
    path = Path(env["REPRO_SERVICE_DB"]).with_suffix(".telemetry.jsonl")
    records = []
    if path.exists():
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                records.append(json.loads(line))
    return records


def test_sigterm_mid_grid_then_resume_matches_uninterrupted_run(tmp_path):
    env = service_env(tmp_path, "killed", REPRO_GRID_JOB_DELAY="0.8")
    plan_sweep(env)
    db_path = env["REPRO_SERVICE_DB"]

    runner = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "grid", "run"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # Wait until at least one job finished, then pull the plug while a
        # later job is still mid-execution (each sleeps 0.8s via the hook).
        deadline = time.time() + 120
        while time.time() < deadline:
            done = sum(
                1 for row in job_states(db_path).values() if row["state"] == "done"
            )
            if done >= 1:
                break
            time.sleep(0.02)
        else:
            runner.kill()
            pytest.fail("no job finished within 120s")
        runner.send_signal(signal.SIGTERM)
        runner.wait(timeout=60)
    finally:
        if runner.poll() is None:
            runner.kill()
            runner.wait(timeout=30)

    assert runner.returncode == 128 + signal.SIGTERM  # graceful SystemExit path

    states = job_states(db_path)
    finished_before = {n for n, row in states.items() if row["state"] == "done"}
    assert finished_before, "expected at least one finished job before the kill"
    assert len(finished_before) < 4, "kill landed too late to interrupt the grid"
    # The in-flight job was un-claimed with its attempt refunded; nothing is
    # left running and nothing was dead-lettered by the interrupt.
    assert all(row["state"] in ("done", "pending") for row in states.values())
    # flush-on-interrupt: no half-written exposure bundles survive the kill.
    cache_dir = Path(env["REPRO_CACHE_DIR"])
    stale = list(cache_dir.glob(".exposure-*")) if cache_dir.exists() else []
    assert stale == []

    resume = repro(["grid", "resume"], service_env(tmp_path, "killed"))
    assert resume.returncode == 0, resume.stderr

    after = job_states(db_path)
    assert all(row["state"] == "done" for row in after.values())
    # Jobs finished before the kill were not re-executed: same run id, same
    # attempt count, and exactly one job.done trace line per job overall.
    for name in finished_before:
        assert after[name] == states[name]
    records = telemetry_records(env)
    done_per_job = {}
    for record in records:
        if record.get("name") == "job.done":
            done_per_job[record["job"]] = done_per_job.get(record["job"], 0) + 1
    assert done_per_job == {name: 1 for name in after}
    # The shared exposure was built exactly once across both invocations.
    builds = sum(
        int(record["builds"])
        for record in records
        if record.get("name") == "exposure.cache"
    )
    assert builds == 1

    # Byte-identity: the interrupted-then-resumed store exports the same
    # canonical bytes as one uninterrupted run in fresh directories.
    ref_env = service_env(tmp_path, "reference")
    plan_sweep(ref_env)
    ref_run = repro(["grid", "run"], ref_env)
    assert ref_run.returncode == 0, ref_run.stderr
    assert export_bytes(env) == export_bytes(ref_env)


def test_retry_exhausted_job_parks_in_dead_letter_via_cli(tmp_path):
    env = service_env(tmp_path, "poison")
    proc = repro(
        [
            "--scale", "0.02",
            "grid", "plan", "monitor_fraction_sweep",
            "--axis", "params.fractions=0.2:0.5,2:3",
            "--days", "2",
            "--retry-budget", "2",
        ],
        env,
    )
    assert proc.returncode == 0, proc.stderr

    run = repro(["grid", "run", "--backoff", "0"], env)
    assert run.returncode == 1  # queue did not drain clean

    jobs = repro(["jobs", "ls", "--json"], env)
    assert jobs.returncode == 0, jobs.stderr
    payload = json.loads(jobs.stdout)
    dead = payload["dead_letter"]
    assert len(dead) == 1
    assert dead[0]["attempts"] == 2
    assert "fractions must lie in (0, 1]" in dead[0]["traceback"]
    assert dead[0]["name"] == "params.fractions=2:3"
    by_name = {row["name"]: row for row in payload["jobs"]}
    assert by_name["params.fractions=0.2:0.5"]["state"] == "done"
    assert by_name["params.fractions=2:3"]["state"] == "failed"
