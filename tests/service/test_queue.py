"""Job queue: claims, retries, dead-lettering, recovery, idempotent plans."""

import pytest

from repro.service import GridAxis, GridSpec, JobQueue, plan_grid


@pytest.fixture()
def plan():
    return plan_grid(
        GridSpec(
            scenario="monitor_fraction_sweep",
            axes=(
                GridAxis("days", (2, 3)),
                GridAxis("params.fractions", ((0.5,), (1.0,))),
            ),
            scale=0.02,
            retry_budget=2,
        )
    )


@pytest.fixture()
def queue(tmp_path, plan):
    q = JobQueue(tmp_path / "service.sqlite")
    q.enqueue_plan(plan)
    yield q
    q.close()


class TestPlanning:
    def test_enqueue_is_idempotent(self, queue, plan):
        stats = queue.enqueue_plan(plan)
        assert stats == {"jobs": 4, "inserted": 0}
        assert queue.counts(plan.grid_id)["pending"] == 4

    def test_replan_preserves_finished_state(self, queue, plan):
        claimed = queue.claim_next("w", grid_id=plan.grid_id)
        queue.mark_done(claimed.id, "run-1")
        queue.enqueue_plan(plan)
        counts = queue.counts(plan.grid_id)
        assert counts["done"] == 1 and counts["pending"] == 3

    def test_grid_spec_roundtrip_and_unknown_grid(self, queue, plan):
        assert queue.grid_spec(plan.grid_id) == plan.spec
        with pytest.raises(KeyError, match="unknown grid"):
            queue.grid_spec("nope")
        assert queue.latest_grid_id() == plan.grid_id


class TestClaiming:
    def test_claims_follow_group_order(self, queue, plan):
        order = [queue.claim_next("w", grid_id=plan.grid_id).job.name for _ in range(4)]
        assert order == [job.name for job in plan.jobs]

    def test_claim_marks_running_and_counts_attempt(self, queue, plan):
        claimed = queue.claim_next("worker-a", grid_id=plan.grid_id)
        assert claimed.attempts == 1
        row = queue.list_jobs(plan.grid_id)[0]
        assert row["state"] == "running"
        assert row["claimed_by"] == "worker-a"

    def test_two_connections_never_claim_the_same_job(self, tmp_path, plan):
        path = tmp_path / "service.sqlite"
        with JobQueue(path) as a:
            a.enqueue_plan(plan)
            with JobQueue(path) as b:
                names = set()
                for q in (a, b, a, b):
                    names.add(q.claim_next("w", grid_id=plan.grid_id).job.name)
        assert len(names) == 4

    def test_digest_filter_scopes_the_claim(self, queue, plan):
        digest = plan.jobs[-1].digest
        claimed = queue.claim_next("w", grid_id=plan.grid_id, digest=digest)
        assert claimed.job.digest == digest
        assert claimed.job.name == plan.jobs[2].name

    def test_drained_queue_claims_none(self, queue, plan):
        for _ in range(4):
            queue.mark_done(queue.claim_next("w").id, "r")
        assert queue.claim_next("w") is None
        assert queue.next_eligible_at(plan.grid_id) is None


class TestRetriesAndDeadLetter:
    def test_failure_backs_off_then_dead_letters(self, queue, plan):
        claimed = queue.claim_next("w", grid_id=plan.grid_id, now=100.0)
        outcome = queue.mark_failed(claimed.id, "Traceback: boom", backoff_base=0.5, now=101.0)
        assert outcome == "retry"
        # Backing off: not eligible at now, eligible at not_before.
        assert queue.claim_next("w", grid_id=plan.grid_id, digest=claimed.job.digest, now=101.0).job.name != claimed.job.name
        # Within its digest group the failed job is the only pending one.
        assert queue.next_eligible_at(plan.grid_id, claimed.job.digest) == pytest.approx(101.5)
        again = queue.claim_next("w", grid_id=plan.grid_id, now=102.0)
        assert again.job.name == claimed.job.name
        assert again.attempts == 2
        outcome = queue.mark_failed(again.id, "Traceback: boom again", now=103.0)
        assert outcome == "dead_letter"
        dead = queue.dead_letter_jobs(plan.grid_id)
        assert len(dead) == 1
        assert dead[0]["name"] == claimed.job.name
        assert dead[0]["attempts"] == 2
        assert "boom again" in dead[0]["traceback"]
        assert queue.counts(plan.grid_id)["failed"] == 1

    def test_done_clears_error_and_stores_run_id(self, queue, plan):
        claimed = queue.claim_next("w")
        queue.mark_failed(claimed.id, "tb", backoff_base=0.0, now=1.0)
        again = queue.claim_next("w", now=2.0)
        queue.mark_done(again.id, "run-xyz")
        row = queue.list_jobs(plan.grid_id)[0]
        assert row["state"] == "done"
        assert row["run_id"] == "run-xyz"
        assert row["error"] is None


class TestRecovery:
    def test_interrupt_refunds_the_attempt(self, queue, plan):
        claimed = queue.claim_next("w")
        queue.mark_interrupted(claimed.id)
        row = queue.list_jobs(plan.grid_id)[0]
        assert row["state"] == "pending"
        assert row["attempts"] == 0
        assert row["claimed_by"] is None

    def test_recover_stale_keeps_the_attempt_spent(self, queue, plan):
        queue.claim_next("w")
        queue.claim_next("w")
        assert queue.recover_stale(plan.grid_id) == 2
        rows = queue.list_jobs(plan.grid_id)
        assert all(row["state"] == "pending" for row in rows)
        assert sum(row["attempts"] for row in rows) == 2

    def test_span_id_lands_on_the_job_row(self, queue, plan):
        claimed = queue.claim_next("w")
        queue.set_span(claimed.id, "span-1-2")
        assert queue.list_jobs(plan.grid_id)[0]["span_id"] == "span-1-2"


class TestGroupKeys:
    def test_solo_jobs_get_unique_group_keys(self, tmp_path):
        plan = plan_grid(GridSpec(scenario="reseed_denial", scale=0.02))
        with JobQueue(tmp_path / "s.sqlite") as queue:
            queue.enqueue_plan(plan)
            digests = queue.pending_digests(plan.grid_id)
        assert digests == ["solo:base"]

    def test_pending_digests_in_group_order(self, queue, plan):
        assert queue.pending_digests(plan.grid_id) == [
            plan.jobs[0].digest,
            plan.jobs[2].digest,
        ]
