"""Result store: content-addressed dedup, deterministic ids, stable export."""

import pytest

from repro.analysis.series import FigureData
from repro.core import get_scenario
from repro.core.scenario import ScenarioResult
from repro.service import GridJob, ResultStore
from repro.service.store import canonical_json, summary_payload


def make_result(value=1.0, seed=1):
    figure = FigureData(
        figure_id="fig", title="t", x_label="x", y_label="y"
    )
    figure.new_series("s").add(0.5, value)
    figure.add_note("note")
    return ScenarioResult(
        spec=get_scenario("monitor_fraction_sweep"),
        scale=0.02,
        seed=seed,
        figures={"fig": figure},
        summaries={"metrics": {"coverage": value, "n": 3}},
        tables={"table": "rendered"},
        exposure_digest="digest-abc",
    )


def make_job(name="cell", seed=1):
    return GridJob(
        name=name,
        scenario="monitor_fraction_sweep",
        scale=0.02,
        seed=seed,
        days=2,
        params=(("fractions", (0.5,)),),
    )


class TestRecording:
    def test_identical_payloads_deduplicate(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.record_result(make_result(), grid_id="g", job=make_job("a"))
            store.record_result(make_result(), grid_id="g", job=make_job("b"))
            # Two runs, but the summary and series blobs are shared.
            assert len(store.runs()) == 2
            assert store.payload_count() == 2

    def test_rerecording_replaces_not_duplicates(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            first = store.record_result(
                make_result(), grid_id="g", job=make_job(), now=1.0
            )
            second = store.record_result(
                make_result(), grid_id="g", job=make_job(), now=2.0
            )
            assert first == second
            assert len(store.runs()) == 1

    def test_run_id_deterministic_across_stores(self, tmp_path):
        with ResultStore(tmp_path / "a.sqlite") as a:
            id_a = a.record_result(make_result(), grid_id="g", job=make_job())
        with ResultStore(tmp_path / "b.sqlite") as b:
            id_b = b.record_result(make_result(), grid_id="g", job=make_job())
        assert id_a == id_b

    def test_standalone_results_record_without_a_job(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_id = store.record_result(make_result())
            run = store.get_run(run_id)
            assert run["grid_id"] is None
            assert run["scenario"] == "monitor_fraction_sweep"
            assert run["summary"] == {"metrics": {"coverage": 1.0, "n": 3}}

    def test_summary_payload_is_exactly_the_scalar_summaries(self):
        result = make_result(value=2.5)
        assert canonical_json(summary_payload(result)) == canonical_json(
            {"metrics": {"coverage": 2.5, "n": 3}}
        )


class TestLookup:
    def test_get_run_by_prefix_and_name(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_id = store.record_result(make_result(), grid_id="g", job=make_job())
            assert store.get_run(run_id[:6])["run_id"] == run_id
            assert store.get_run("cell")["run_id"] == run_id
            with pytest.raises(KeyError, match="no run matching"):
                store.get_run("zz-not-here")

    def test_ambiguous_prefix_rejected(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.record_result(make_result(1.0), grid_id="g", job=make_job("a"))
            store.record_result(make_result(2.0), grid_id="g", job=make_job("b", seed=2))
            with pytest.raises(KeyError, match="ambiguous|no run"):
                store.get_run("")

    def test_missing_payload_raises(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(KeyError, match="no payload"):
                store.payload("0" * 64)


class TestExport:
    def test_export_independent_of_insertion_order(self, tmp_path):
        jobs = [make_job("a"), make_job("b", seed=2)]
        results = [make_result(1.0), make_result(2.0, seed=2)]
        with ResultStore(tmp_path / "fwd.sqlite") as fwd:
            for job, result in zip(jobs, results):
                fwd.record_result(result, grid_id="g", job=job, now=1.0)
            forward = fwd.export_bytes()
        with ResultStore(tmp_path / "rev.sqlite") as rev:
            for job, result in zip(reversed(jobs), reversed(results)):
                rev.record_result(result, grid_id="g", job=job, now=99.0)
            backward = rev.export_bytes()
        assert forward == backward

    def test_export_excludes_volatile_fields(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.record_result(
                make_result(), grid_id="g", job=make_job(), wall_seconds=1.23, now=5.0
            )
            text = store.export_bytes().decode("utf-8")
        assert "wall_seconds" not in text
        assert "created_at" not in text

    def test_export_scopes_to_grid(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.record_result(make_result(), grid_id="g1", job=make_job("a"))
            store.record_result(
                make_result(seed=2), grid_id="g2", job=make_job("b", seed=2)
            )
            assert len(store.export("g1")["runs"]) == 1
            assert len(store.export()["runs"]) == 2
