"""Telemetry: JSONL events/spans, no-op sink, read-side helpers."""

import pytest

from repro.service import Telemetry, count_events, read_events, span_seconds


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestWriting:
    def test_events_append_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Telemetry(path, clock=FakeClock()) as telemetry:
            telemetry.event("job.done", job="a", run_id="r1")
            telemetry.event("job.done", job="b", run_id="r2")
        records = read_events(path)
        assert [r["name"] for r in records] == ["job.done", "job.done"]
        assert records[0] == {
            "ts": 100.0,
            "type": "event",
            "name": "job.done",
            "job": "a",
            "run_id": "r1",
        }

    def test_span_context_manager_times_the_body(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = FakeClock()
        with Telemetry(path, clock=clock) as telemetry:
            with telemetry.span("phase:execute", job="a") as span_id:
                clock.advance(2.5)
        start, end = read_events(path)
        assert start["type"] == "span_start" and end["type"] == "span_end"
        assert start["span"] == end["span"] == span_id
        assert end["status"] == "ok"
        assert end["seconds"] == pytest.approx(2.5)

    def test_span_error_status_and_propagation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Telemetry(path) as telemetry:
            with pytest.raises(ValueError):
                with telemetry.span("phase:execute"):
                    raise ValueError("boom")
        end = read_events(path)[-1]
        assert end["status"] == "error"
        assert end["error"] == "ValueError"

    def test_explicit_spans_share_unique_ids(self, tmp_path):
        with Telemetry(tmp_path / "t.jsonl") as telemetry:
            first = telemetry.span_start("job", job="a")
            second = telemetry.span_start("job", job="b")
            telemetry.span_end("job", second)
            telemetry.span_end("job", first, status="interrupted")
        assert first != second
        records = read_events(tmp_path / "t.jsonl")
        ends = [r for r in records if r["type"] == "span_end"]
        assert {r["status"] for r in ends} == {"ok", "interrupted"}

    def test_none_path_is_a_noop_sink(self):
        telemetry = Telemetry(None)
        telemetry.event("anything")
        with telemetry.span("phase"):
            pass
        telemetry.close()

    def test_interrupted_runs_leave_lines_on_disk(self, tmp_path):
        # Each line flushes immediately; no close() needed to observe it.
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(path)
        telemetry.event("job.interrupted", job="a")
        assert count_events(read_events(path), "job.interrupted") == 1
        telemetry.close()


class TestReading:
    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "absent.jsonl") == []

    def test_count_events_matches_attributes(self, tmp_path):
        with Telemetry(tmp_path / "t.jsonl") as telemetry:
            telemetry.event("exposure.cache", digest="d1", builds=1)
            telemetry.event("exposure.cache", digest="d1", builds=0)
            telemetry.event("exposure.cache", digest="d2", builds=1)
        records = read_events(tmp_path / "t.jsonl")
        assert count_events(records, "exposure.cache") == 3
        assert count_events(records, "exposure.cache", digest="d1") == 2
        assert count_events(records, "exposure.cache", digest="d1", builds=1) == 1

    def test_span_seconds_collects_completed_durations(self, tmp_path):
        clock = FakeClock()
        with Telemetry(tmp_path / "t.jsonl", clock=clock) as telemetry:
            with telemetry.span("phase:execute"):
                clock.advance(1.0)
            with telemetry.span("phase:execute"):
                clock.advance(3.0)
            telemetry.span_start("phase:execute")  # never ended
        records = read_events(tmp_path / "t.jsonl")
        assert span_seconds(records, "phase:execute") == pytest.approx([1.0, 3.0])
