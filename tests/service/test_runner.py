"""Grid runner: shared builds, resume semantics, retries, multi-worker."""

import pytest

from repro.core import run_scenario
from repro.service import (
    GridAxis,
    GridSpec,
    JobQueue,
    ResultStore,
    Telemetry,
    count_events,
    execute_grid,
    plan_grid,
    read_events,
)
from repro.service.store import canonical_json, summary_payload
from repro.sim.exposure import ExposureEngine


def sweep_spec(**overrides):
    base = dict(
        scenario="monitor_fraction_sweep",
        axes=(
            GridAxis(
                "params.fractions",
                ((0.2, 0.5), (0.3, 0.6), (0.4, 0.8), (0.5, 1.0)),
            ),
        ),
        scale=0.02,
        days=2,
        retry_budget=2,
    )
    base.update(overrides)
    return GridSpec(**base)


def enqueue(tmp_path, spec):
    plan = plan_grid(spec)
    db = tmp_path / "service.sqlite"
    with JobQueue(db) as queue:
        queue.enqueue_plan(plan)
    return plan, str(db)


def engine_factory_for(tmp_path):
    cache = tmp_path / "exposure-cache"
    return lambda: ExposureEngine(cache_dir=cache)


class TestSharedBuilds:
    def test_four_job_group_builds_exposure_once(self, tmp_path):
        plan, db = enqueue(tmp_path, sweep_spec())
        trace = tmp_path / "trace.jsonl"
        with Telemetry(trace) as telemetry:
            result = execute_grid(
                db, plan.grid_id, engine_factory_for(tmp_path), telemetry=telemetry
            )
        assert result.done == 4
        assert result.exposure_builds == 1
        assert result.exposure_hits == 3
        records = read_events(trace)
        builds = sum(
            int(r["builds"]) for r in records if r.get("name") == "exposure.cache"
        )
        assert builds == 1
        assert count_events(records, "job.done") == 4

    def test_grid_summaries_byte_identical_to_standalone_runs(self, tmp_path):
        plan, db = enqueue(tmp_path, sweep_spec())
        execute_grid(db, plan.grid_id, engine_factory_for(tmp_path))
        with ResultStore(db) as store:
            runs = {run["job_name"]: run for run in store.runs(plan.grid_id)}
            for job in plan.jobs:
                standalone = run_scenario(
                    job.resolved_spec(),
                    scale=job.scale,
                    seed=job.seed,
                    engine=ExposureEngine(cache_dir=tmp_path / "exposure-cache"),
                )
                stored = store.payload_text(runs[job.name]["summary_sha"])
                assert stored == canonical_json(summary_payload(standalone))


class TestResume:
    def test_resume_skips_finished_jobs(self, tmp_path):
        plan, db = enqueue(tmp_path, sweep_spec())
        factory = engine_factory_for(tmp_path)
        first = execute_grid(db, plan.grid_id, factory, max_jobs=2)
        assert first.done == 2
        with JobQueue(db) as queue:
            assert queue.counts(plan.grid_id)["pending"] == 2
        second = execute_grid(db, plan.grid_id, factory)
        assert second.done == 2
        assert set(first.executed).isdisjoint(second.executed)
        # The resumed engine loads the bundle from disk: zero fresh builds.
        assert second.exposure_builds == 0
        assert second.exposure_disk_hits >= 1
        with JobQueue(db) as queue:
            counts = queue.counts(plan.grid_id)
        assert counts["done"] == 4 and counts["pending"] == 0

    def test_rerun_of_finished_grid_is_a_noop(self, tmp_path):
        plan, db = enqueue(tmp_path, sweep_spec())
        factory = engine_factory_for(tmp_path)
        execute_grid(db, plan.grid_id, factory)
        again = execute_grid(db, plan.grid_id, factory)
        assert again.done == 0 and again.executed == []


class TestFailurePolicy:
    def test_poison_job_retries_then_dead_letters(self, tmp_path):
        # fractions > 1 fail validation inside the scenario deterministically.
        spec = sweep_spec(
            axes=(GridAxis("params.fractions", ((0.5,), (2.0, 3.0))),),
            retry_budget=2,
        )
        plan, db = enqueue(tmp_path, spec)
        result = execute_grid(
            db, plan.grid_id, engine_factory_for(tmp_path), backoff_base=0.0
        )
        assert result.done == 1
        assert result.retried == 1
        assert result.dead_lettered == 1
        with JobQueue(db) as queue:
            dead = queue.dead_letter_jobs(plan.grid_id)
            assert len(dead) == 1
            assert "fractions must lie in (0, 1]" in dead[0]["traceback"]
            counts = queue.counts(plan.grid_id)
        assert counts == {"pending": 0, "running": 0, "done": 1, "failed": 1}


class TestMultiWorker:
    def test_two_workers_split_two_digest_groups(self, tmp_path):
        spec = sweep_spec(
            axes=(
                GridAxis("days", (2, 3)),
                GridAxis("params.fractions", ((0.5,), (1.0,))),
            ),
            days=None,
        )
        plan, db = enqueue(tmp_path, spec)
        trace = tmp_path / "trace.jsonl"
        with Telemetry(trace) as telemetry:
            result = execute_grid(
                db,
                plan.grid_id,
                engine_factory_for(tmp_path),
                telemetry=telemetry,
                workers=2,
            )
        assert result.done == 4
        # One build per digest group even though groups ran concurrently.
        assert result.exposure_builds == 2
        assert result.exposure_hits == 2
        records = read_events(trace)
        for digest in plan.shared_digests:
            group_builds = sum(
                int(r["builds"])
                for r in records
                if r.get("name") == "exposure.cache" and r.get("digest") == digest
            )
            assert group_builds == 1

    def test_invalid_worker_count_rejected(self, tmp_path):
        plan, db = enqueue(tmp_path, sweep_spec())
        with pytest.raises(ValueError, match="workers"):
            execute_grid(db, plan.grid_id, engine_factory_for(tmp_path), workers=0)
