"""Grid planner: axis parsing, expansion, digest grouping, validation."""

import json

import pytest

from repro.core import run_scenario
from repro.core.scenario import scenario_exposure_digest
from repro.service import GridAxis, GridJob, GridSpec, parse_axis, plan_grid
from repro.sim.exposure import ExposureEngine


class TestParseAxis:
    def test_ints_floats_strings(self):
        axis = parse_axis("days=5,10")
        assert axis.key == "days"
        assert axis.values == (5, 10)
        assert parse_axis("scale=0.05,0.1").values == (0.05, 0.1)
        assert parse_axis("params.mode=fast,slow").values == ("fast", "slow")

    def test_colon_builds_tuples(self):
        axis = parse_axis("params.fractions=0.2:0.5,0.3:0.9")
        assert axis.values == ((0.2, 0.5), (0.3, 0.9))

    @pytest.mark.parametrize("text", ["days", "=1,2", "days=", "days= , "])
    def test_malformed_axes_rejected(self, text):
        with pytest.raises(ValueError):
            parse_axis(text)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown axis key"):
            parse_axis("fleet=1,2")


class TestGridSpec:
    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="given twice"):
            GridSpec(
                scenario="monitor_fraction_sweep",
                axes=(GridAxis("days", (1,)), GridAxis("days", (2,))),
            )

    def test_retry_budget_validated(self):
        with pytest.raises(ValueError, match="retry budget"):
            GridSpec(scenario="monitor_fraction_sweep", retry_budget=0)

    def test_grid_id_is_content_addressed(self):
        a = GridSpec("monitor_fraction_sweep", axes=(GridAxis("days", (2, 3)),))
        b = GridSpec("monitor_fraction_sweep", axes=(GridAxis("days", (2, 3)),))
        c = GridSpec("monitor_fraction_sweep", axes=(GridAxis("days", (2, 4)),))
        assert a.grid_id == b.grid_id
        assert a.grid_id != c.grid_id
        assert a.grid_id.startswith("monitor_fraction_sweep-")

    def test_spec_roundtrips_through_json(self):
        spec = GridSpec(
            scenario="monitor_fraction_sweep",
            axes=(GridAxis("params.fractions", ((0.2, 0.5), (0.3, 0.9))),),
            scale=0.05,
            seed=7,
            days=4,
            retry_budget=2,
        )
        restored = GridSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert restored == spec
        assert restored.grid_id == spec.grid_id


class TestPlanGrid:
    def test_cartesian_expansion_and_names(self):
        plan = plan_grid(
            GridSpec(
                scenario="monitor_fraction_sweep",
                axes=(
                    GridAxis("days", (2, 3)),
                    GridAxis("params.fractions", ((0.5,), (1.0,))),
                ),
                scale=0.02,
            )
        )
        assert len(plan.jobs) == 4
        names = {job.name for job in plan.jobs}
        assert "days=2,params.fractions=0.5" in names
        assert "days=3,params.fractions=1" in names

    def test_no_axes_is_single_job_grid(self):
        plan = plan_grid(GridSpec(scenario="monitor_fraction_sweep", scale=0.02))
        assert [job.name for job in plan.jobs] == ["base"]

    def test_param_only_axes_share_one_digest(self):
        plan = plan_grid(
            GridSpec(
                scenario="monitor_fraction_sweep",
                axes=(
                    GridAxis(
                        "params.fractions",
                        ((0.2, 0.5), (0.3, 0.6), (0.4, 0.8), (0.5, 1.0)),
                    ),
                ),
                scale=0.02,
                days=2,
            )
        )
        assert len(plan.groups) == 1
        digest, group = plan.groups[0]
        assert digest is not None and len(group) == 4
        assert plan.shared_digests == [digest]

    def test_days_axis_splits_groups_and_orders_jobs(self):
        plan = plan_grid(
            GridSpec(
                scenario="monitor_fraction_sweep",
                axes=(
                    GridAxis("days", (2, 3)),
                    GridAxis("params.fractions", ((0.5,), (1.0,))),
                ),
                scale=0.02,
            )
        )
        assert len(plan.groups) == 2
        # Jobs are ordered group-by-group so one exposure drains at a time.
        digests = [job.digest for job in plan.jobs]
        assert digests[0] == digests[1] and digests[2] == digests[3]
        assert digests[0] != digests[2]

    def test_message_level_jobs_have_no_digest(self):
        plan = plan_grid(GridSpec(scenario="reseed_denial", scale=0.02))
        assert plan.jobs[0].digest is None
        assert plan.groups == [(None, plan.jobs)]
        assert plan.shared_digests == []

    def test_unknown_scenario_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            plan_grid(GridSpec(scenario="nope"))

    def test_days_axis_on_dayless_kind_fails_at_plan_time(self):
        with pytest.raises(ValueError, match="no day horizon"):
            plan_grid(
                GridSpec(scenario="reseed_denial", axes=(GridAxis("days", (2,)),))
            )

    def test_non_numeric_run_axis_fails_at_plan_time(self):
        with pytest.raises(ValueError, match="days"):
            plan_grid(
                GridSpec(
                    scenario="monitor_fraction_sweep",
                    axes=(GridAxis("days", ("soon",)),),
                )
            )

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ValueError, match="duplicate grid cell"):
            plan_grid(
                GridSpec(
                    scenario="monitor_fraction_sweep",
                    axes=(GridAxis("days", (2, 2)),),
                )
            )

    def test_job_roundtrips_through_json(self):
        plan = plan_grid(
            GridSpec(
                scenario="monitor_fraction_sweep",
                axes=(GridAxis("params.fractions", ((0.2, 0.5),)),),
                scale=0.02,
                days=2,
            )
        )
        job = plan.jobs[0]
        restored = GridJob.from_dict(json.loads(json.dumps(job.as_dict())))
        assert restored == job
        # The restored job resolves to the same runnable spec.
        assert restored.resolved_spec() == job.resolved_spec()


class TestScenarioExposureDigest:
    def test_message_level_kinds_report_none(self):
        assert scenario_exposure_digest("netdb-scale") is None
        assert scenario_exposure_digest("reseed_denial") is None
        assert scenario_exposure_digest("floodfill-takedown") is None

    def test_digest_depends_on_scale_seed_not_params(self):
        base = scenario_exposure_digest("monitor_fraction_sweep", scale=0.02, seed=1)
        assert base is not None
        assert scenario_exposure_digest("monitor_fraction_sweep", 0.02, 2) != base
        assert scenario_exposure_digest("monitor_fraction_sweep", 0.03, 1) != base

    def test_planned_digest_matches_executed_digest_and_bundle(self, tmp_path):
        plan = plan_grid(
            GridSpec(
                scenario="monitor_fraction_sweep",
                axes=(GridAxis("params.fractions", ((0.5,),)),),
                scale=0.02,
                days=2,
            )
        )
        job = plan.jobs[0]
        engine = ExposureEngine(cache_dir=tmp_path / "cache")
        result = run_scenario(
            job.resolved_spec(), scale=job.scale, seed=job.seed, engine=engine
        )
        engine.flush()
        assert result.exposure_digest == job.digest
        bundles = [p.name for p in (tmp_path / "cache").iterdir() if p.is_dir()]
        assert bundles == [job.digest]

    def test_mode_switch_uses_days_per_mode_horizon(self):
        # single_router runs 2 x days_per_mode days; its digest must match
        # a campaign over the same total horizon, not spec.days alone.
        from repro.core.campaign import (
            campaign_observation_seed,
            scaled_population_config,
        )
        from repro.sim.exposure_cache import exposure_digest

        got = scenario_exposure_digest("single_router", scale=0.02, seed=3)
        config = scaled_population_config(0.02, days=10, seed=3)
        assert got == exposure_digest(config, campaign_observation_seed(3))
