"""CLI surface of the campaign service: option resolution, grid/jobs/results.

The ``resolve_option`` precedence tests are deliberately one-rule-per-test:
every CLI-flag/env-twin pair in the module routes through that single
helper, so these tests pin the precedence contract for all of them at once
(including the service knobs ``REPRO_SERVICE_DB`` / ``REPRO_GRID_WORKERS``).
"""

import json
from pathlib import Path

import pytest

from repro.cli import (
    _parse_shard_days,
    _parse_workers,
    build_parser,
    main,
    resolve_option,
)


class TestResolveOption:
    def test_explicit_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_WORKERS", "8")
        assert resolve_option(2, "REPRO_GRID_WORKERS", default=1) == 2

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_DB", "/tmp/x.sqlite")
        assert resolve_option(
            None, "REPRO_SERVICE_DB", default=Path("d"), parse=Path
        ) == Path("/tmp/x.sqlite")

    def test_default_when_neither_given(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_DB", raising=False)
        assert resolve_option(None, "REPRO_SERVICE_DB", default="d") == "d"

    def test_blank_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_WORKERS", "   ")
        assert resolve_option(None, "REPRO_GRID_WORKERS", default=1) == 1

    def test_parse_applies_to_env_only(self, monkeypatch):
        # Flags arrive pre-converted by argparse; parse must not touch them.
        monkeypatch.setenv("REPRO_GRID_WORKERS", "4")
        calls = []

        def parse(raw):
            calls.append(raw)
            return int(raw)

        assert resolve_option(None, "REPRO_GRID_WORKERS", parse=parse) == 4
        assert resolve_option(9, "REPRO_GRID_WORKERS", parse=parse) == 9
        assert calls == ["4"]

    def test_flag_zero_is_an_explicit_value(self, monkeypatch):
        # Only None means "flag absent"; falsy values are still explicit.
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "100")
        assert resolve_option(0, "REPRO_CACHE_MAX_BYTES", default=5) == 0


class TestEnvParsers:
    @pytest.mark.parametrize("raw", ["0", "-1", "two", "1.5", ""])
    def test_workers_rejects_non_positive(self, raw):
        with pytest.raises(ValueError, match="REPRO_GRID_WORKERS"):
            _parse_workers(raw)

    def test_workers_accepts_positive(self):
        assert _parse_workers("3") == 3

    @pytest.mark.parametrize("raw", ["0", "-2", "week"])
    def test_shard_days_rejects_non_positive(self, raw):
        with pytest.raises(ValueError, match="REPRO_CACHE_SHARD_DAYS"):
            _parse_shard_days(raw)

    def test_shard_days_accepts_positive(self):
        assert _parse_shard_days("8") == 8


@pytest.fixture()
def service_db(tmp_path, monkeypatch):
    db = tmp_path / "service.sqlite"
    monkeypatch.setenv("REPRO_SERVICE_DB", str(db))
    return db


SWEEP_ARGS = [
    "--scale", "0.02",
    "grid", "plan", "monitor_fraction_sweep",
    "--axis", "params.fractions=0.2:0.5,0.3:0.6,0.4:0.8,0.5:1",
    "--days", "2",
]


class TestGridCli:
    def test_plan_reports_groups_and_is_idempotent(self, service_db, capsys):
        assert main(SWEEP_ARGS) == 0
        first = capsys.readouterr().out
        assert "4 job(s) in 1 exposure group(s)" in first
        assert "(4 newly queued)" in first
        assert main(SWEEP_ARGS) == 0
        again = capsys.readouterr().out
        assert "(0 newly queued)" in again

    def test_plan_json_lists_jobs_and_groups(self, service_db, capsys):
        assert main(SWEEP_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["jobs"]) == 4
        assert len(payload["groups"]) == 1
        assert payload["service_db"] == str(service_db)

    def test_run_then_resume_is_a_noop(self, service_db, capsys):
        assert main(SWEEP_ARGS) == 0
        assert main(["grid", "run"]) == 0
        run_out = capsys.readouterr().out
        assert "4 job(s) finished this invocation" in run_out
        assert "1 population build(s)" in run_out
        assert main(["grid", "resume"]) == 0
        resume_out = capsys.readouterr().out
        assert "0 job(s) finished this invocation" in resume_out
        assert "4 done" in resume_out
        # Default telemetry trace lands next to the service db.
        assert service_db.with_suffix(".telemetry.jsonl").exists()

    def test_jobs_ls_and_results_flow(self, service_db, capsys):
        assert main(SWEEP_ARGS) == 0
        assert main(["grid", "run"]) == 0
        capsys.readouterr()
        assert main(["jobs", "ls"]) == 0
        jobs_out = capsys.readouterr().out
        assert jobs_out.count("[done") == 4
        assert main(["results", "ls"]) == 0
        ls_out = capsys.readouterr().out
        assert "4 run(s)" in ls_out or "params.fractions=0.2:0.5" in ls_out
        assert main(["results", "show", "params.fractions=0.2:0.5"]) == 0
        show_out = capsys.readouterr().out
        assert "monitor_fraction_sweep" in show_out
        out_file = service_db.parent / "export.json"
        assert main(["results", "export", "--out", str(out_file)]) == 0
        exported = json.loads(out_file.read_text())
        assert len(exported["runs"]) == 4


class TestUsageErrors:
    def test_unknown_scenario_exits_2(self, service_db, capsys):
        assert main(["grid", "plan", "not-a-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_malformed_axis_exits_2(self, service_db, capsys):
        assert main(["grid", "plan", "monitor_fraction_sweep", "--axis", "days"]) == 2
        assert capsys.readouterr().err.strip()

    def test_run_with_no_grids_exits_2(self, service_db, capsys):
        assert main(["grid", "run"]) == 2
        assert "no grids planned yet" in capsys.readouterr().err

    def test_unknown_grid_id_exits_2(self, service_db, capsys):
        assert main(SWEEP_ARGS) == 0
        capsys.readouterr()
        assert main(["grid", "run", "nope-123"]) == 2
        assert "unknown grid" in capsys.readouterr().err

    def test_bad_workers_env_exits_2(self, service_db, monkeypatch, capsys):
        assert main(SWEEP_ARGS) == 0
        capsys.readouterr()
        monkeypatch.setenv("REPRO_GRID_WORKERS", "zero")
        assert main(["grid", "run"]) == 2
        assert "REPRO_GRID_WORKERS" in capsys.readouterr().err

    def test_results_show_unknown_ref_exits_2(self, service_db, capsys):
        assert main(["results", "show", "missing"]) == 2
        assert "no run matching" in capsys.readouterr().err


class TestParserSurface:
    def test_grid_run_flags_parse(self):
        args = build_parser().parse_args(
            ["grid", "run", "abc", "--workers", "2", "--max-jobs", "3",
             "--backoff", "0.1", "--telemetry", "/tmp/t.jsonl"]
        )
        assert args.grid_id == "abc"
        assert args.workers == 2
        assert args.max_jobs == 3
        assert args.backoff == 0.1
        assert args.telemetry == Path("/tmp/t.jsonl")

    def test_service_db_is_a_global_flag(self):
        args = build_parser().parse_args(
            ["--service-db", "/tmp/s.sqlite", "jobs", "ls"]
        )
        assert args.service_db == Path("/tmp/s.sqlite")
