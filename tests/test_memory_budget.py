"""The memory-budget driver at toy scale: record shape and the CLI gate."""

import json

import pytest

from repro.memory_budget import main, run_budgeted_campaign


TOY = {"scale": 0.01, "days": 3, "seed": 7}


class TestRunBudgetedCampaign:
    def test_in_memory_record_is_sane(self):
        record = run_budgeted_campaign(backend="in-memory", **TOY)
        assert record["backend"] == "in_memory"
        assert record["scale"] == TOY["scale"]
        assert record["days"] == TOY["days"]
        assert record["peer_days"] > 0
        assert record["peer_days_per_second"] > 0
        assert record["unique_peers"] > 0
        assert record["peak_rss_kib"] > 0
        assert len(record["summary_sha256"]) == 64

    def test_backends_agree_on_the_summary_digest(self, tmp_path):
        reference = run_budgeted_campaign(backend="in-memory", **TOY)
        restored = run_budgeted_campaign(
            backend="out-of-core", cache_dir=tmp_path, shard_days=2, **TOY
        )
        assert restored["backend"] == "out_of_core"
        assert restored["summary_sha256"] == reference["summary_sha256"]

    def test_out_of_core_requires_a_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            run_budgeted_campaign(backend="out-of-core", **TOY)


class TestCli:
    ARGS = ["--scale", "0.01", "--days", "3", "--seed", "7"]

    def test_prints_a_json_record(self, capsys):
        assert main(self.ARGS) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["backend"] == "in_memory"
        assert "budget_mib" not in record

    def test_budget_gate_passes_under_a_generous_budget(self, capsys):
        assert main([*self.ARGS, "--budget-mib", "100000"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["within_budget"] is True

    def test_budget_gate_fails_over_a_tiny_budget(self, capsys):
        assert main([*self.ARGS, "--budget-mib", "1"]) == 1
        captured = capsys.readouterr()
        record = json.loads(captured.out)
        assert record["within_budget"] is False
        assert "exceeds" in captured.err
