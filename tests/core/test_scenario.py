"""Tests for the declarative scenario engine (``core/scenario.py``)."""

import pytest

from repro.core.campaign import run_figure_suite, run_main_campaign
from repro.core.blocking import blocking_curve
from repro.core.churn_analysis import ip_churn_figure, longevity_figure
from repro.core.geography import asn_figure, country_figure
from repro.core.population import daily_population_figure, unknown_ip_figure
from repro.core.reporting import render_campaign_summary
from repro.core.scenario import (
    ANALYSES,
    FleetSpec,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)
from repro.sim.exposure import ExposureEngine


class TestRegistry:
    def test_at_least_seven_scenarios_registered(self):
        specs = list_scenarios()
        assert len(specs) >= 7
        names = {spec.name for spec in specs}
        assert {
            "main_campaign",
            "single_router",
            "bandwidth_sweep",
            "router_count_sweep",
            "figure_suite",
            "monitor_fraction_sweep",
            "country_blocking",
            "prefix-blocking",
            "reseed_denial",
            "floodfill-takedown",
            "reseed-outage",
            "lossy-network",
        } <= names

    def test_every_spec_has_a_description(self):
        for spec in list_scenarios():
            assert spec.description
            assert spec.days > 0

    def test_get_unknown_scenario_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="main_campaign"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("main_campaign")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ValueError, match="unknown analyses"):
            register_scenario(
                ScenarioSpec(name="bad-analyses", description="x", analyses=("wat",))
            )
        assert "bad-analyses" not in {s.name for s in list_scenarios()}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            register_scenario(
                ScenarioSpec(name="bad-kind", description="x", kind="teleport")
            )

    def test_analyses_registry_covers_paper_pipeline(self):
        assert {
            "population",
            "longevity",
            "ip_churn",
            "capacity",
            "geography",
            "blocking",
            "bridges",
            "summary",
        } <= set(ANALYSES)


class TestRunScenarioEquivalence:
    """Figures through run_scenario() are byte-identical to the bespoke
    entry points at a fixed seed."""

    def test_main_campaign_byte_identical(self):
        scenario = run_scenario("main_campaign", scale=0.02, seed=41, days=4)
        direct = run_main_campaign(days=4, scale=0.02, seed=41)

        assert scenario.campaign is not None
        assert render_campaign_summary(direct) == scenario.tables["campaign_summary"]
        for figure_fn, figure_id in (
            (daily_population_figure, "figure_05"),
            (unknown_ip_figure, "figure_06"),
            (longevity_figure, "figure_07"),
            (ip_churn_figure, "figure_08"),
            (country_figure, "figure_10"),
            (asn_figure, "figure_11"),
        ):
            assert (
                figure_fn(direct.log).to_text()
                == scenario.figures[figure_id].to_text()
            )
        assert blocking_curve(direct).to_text() == scenario.figures["figure_13"].to_text()

    def test_figure_suite_byte_identical(self):
        scenario = run_scenario("figure_suite", scale=0.02, seed=42, days=4)
        direct = run_figure_suite(days=4, scale=0.02, seed=42)
        assert scenario.suite is not None
        assert scenario.figures["figure_02"].to_text() == direct.figure2.to_text()
        assert scenario.figures["figure_03"].to_text() == direct.figure3.to_text()
        assert scenario.figures["figure_04"].to_text() == direct.figure4.to_text()
        assert scenario.suite.longevity == direct.longevity
        assert scenario.suite.ip_churn.as_dict() == direct.ip_churn.as_dict()

    def test_shared_engine_reuses_population_across_scenarios(self):
        engine = ExposureEngine()
        run_scenario("main_campaign", scale=0.02, seed=43, days=4, engine=engine)
        assert engine.misses == 1
        run_scenario("country_blocking", scale=0.02, seed=43, days=4, engine=engine)
        # Same (population config, observation seed) key: no second build.
        assert engine.misses == 1
        assert engine.hits >= 1


class TestWhatIfScenarios:
    def test_monitor_fraction_coverage_is_monotone(self):
        result = run_scenario("monitor_fraction_sweep", scale=0.02, seed=44, days=3)
        figure = result.figures["scenario_monitor_fraction"]
        coverage = figure.get("coverage of daily population")
        assert coverage.is_monotonic_nondecreasing()
        values = coverage.ys
        assert 0.0 < values[0] < values[-1] <= 100.0
        assert result.summaries["monitor_fraction"]["fleet_size"] == 20

    def test_country_blocking_cumulative_curve(self):
        result = run_scenario("country_blocking", scale=0.02, seed=45, days=4)
        figure = result.figures["scenario_country_blocking"]
        cumulative = figure.get("cumulative block")
        assert cumulative.is_monotonic_nondecreasing()
        assert all(0.0 <= y <= 100.0 for y in cumulative.ys)
        single = figure.get("single country")
        # Cumulative dominates any single-country block.
        assert all(c >= s - 1e-9 for (_, c), (_, s) in zip(cumulative.points, single.points))
        assert result.summaries["country_blocking"]["countries"]

    def test_country_blocking_respects_explicit_countries(self):
        from dataclasses import replace

        spec = replace(
            get_scenario("country_blocking"),
            name="country-blocking-custom",
            params={"countries": ("US", "RU")},
        )
        result = run_scenario(spec, scale=0.02, seed=45, days=3)
        assert result.summaries["country_blocking"]["countries"] == ("US", "RU")
        assert len(result.figures["scenario_country_blocking"].get("single country").points) == 2

    def test_prefix_blocking_cumulative_curve(self):
        result = run_scenario("prefix-blocking", scale=0.02, seed=45, days=4)
        figure = result.figures["scenario_prefix_blocking"]
        cumulative = figure.get("cumulative block")
        assert cumulative.is_monotonic_nondecreasing()
        assert all(0.0 <= y <= 100.0 for y in cumulative.ys)
        single = figure.get("single censor")
        assert all(c >= s - 1e-9 for (_, c), (_, s) in zip(cumulative.points, single.points))
        summary = result.summaries["prefix_blocking"]
        assert summary["countries"]
        assert len(summary["prefix_counts"]) == len(summary["countries"])
        assert summary["total_prefixes"] == sum(summary["prefix_counts"].values())
        # The x axis counts blocked prefixes, not censors.
        assert cumulative.points[-1][0] == summary["total_prefixes"]

    def test_prefix_blocking_respects_explicit_countries(self):
        from dataclasses import replace

        spec = replace(
            get_scenario("prefix-blocking"),
            name="prefix-blocking-custom",
            params={"countries": ("US", "RU")},
        )
        result = run_scenario(spec, scale=0.02, seed=45, days=3)
        assert result.summaries["prefix_blocking"]["countries"] == ("US", "RU")
        assert len(result.figures["scenario_prefix_blocking"].get("single censor").points) == 2

    def test_reseed_denial_cohort(self):
        result = run_scenario("reseed_denial", scale=0.02, seed=46)
        figure = result.figures["ablation_reseed"]
        plain = figure.get("no manual reseed")
        assert plain.points[0][1] == 100.0  # nothing blocked: all bootstrap
        assert plain.points[-1][1] == 0.0  # everything blocked, no rescue
        summary = result.summaries["reseed_denial"]
        assert summary["fully_blocked_success_pct"] == 0.0
        assert summary["netdb_routerinfos"] > 0


class TestRunScenarioValidation:
    def test_days_override(self):
        result = run_scenario("bandwidth_sweep", scale=0.02, seed=47, days=2)
        assert result.spec.days == 2

    def test_zero_days_rejected(self):
        with pytest.raises(ValueError, match="at least one day"):
            run_scenario("bandwidth_sweep", scale=0.02, seed=47, days=0)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            run_scenario(12345)

    def test_fleet_spec_helpers(self):
        fleet = FleetSpec(floodfill=3, non_floodfill=2, shared_kbps=512.0)
        monitors = fleet.monitors()
        assert fleet.size == len(monitors) == 5
        assert {m.spec if hasattr(m, "spec") else m.name for m in monitors}

    def test_days_override_rejected_for_dayless_kinds(self):
        with pytest.raises(ValueError, match="no day horizon"):
            run_scenario("reseed_denial", scale=0.02, seed=46, days=30)

    def test_tiny_router_count_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            run_scenario("floodfill-takedown", router_count=1)


class TestFaultInjectionScenarios:
    def test_floodfill_takedown_curve_drops_and_recovers(self):
        result = run_scenario("floodfill-takedown", seed=2018, router_count=60)
        figure = result.figures["scenario_fault_injection"]
        success = figure.get("publish success ratio")
        summary = result.summaries["fault_injection"]
        # Healthy before the window, degraded inside, recovered after
        # (the spec's window is rounds 8-16 of 24).
        assert all(y == 1.0 for _, y in success.points[:8])
        assert summary["publish_success_final"] == 1.0
        assert summary["router_count"] == 60
        coverage = figure.get("netDb coverage")
        assert all(0.0 < y <= 1.0 for _, y in coverage.points)

    def test_fault_scenarios_are_reproducible(self):
        results = [
            run_scenario("lossy-network", seed=7, router_count=50) for _ in range(2)
        ]
        series = [
            r.figures["scenario_fault_injection"].get("publish success ratio").points
            for r in results
        ]
        assert series[0] == series[1]
        assert (
            results[0].summaries["fault_injection"]
            == results[1].summaries["fault_injection"]
        )

    def test_router_count_override_applies_to_fault_kind(self):
        result = run_scenario("lossy-network", seed=7, router_count=40)
        assert result.spec.router_count == 40
        assert result.summaries["fault_injection"]["router_count"] == 40
