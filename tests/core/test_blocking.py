"""Tests for the probabilistic address-based blocking model (Figure 13)."""

import pytest

from repro.core.blocking import (
    blocking_assessment,
    blocking_curve,
    blocking_rate,
    censor_blacklist,
    victim_known_ips,
)
from repro.core.campaign import run_main_campaign


class TestBlockingRate:
    def test_full_overlap(self):
        assert blocking_rate({"a", "b"}, {"a", "b"}) == 1.0

    def test_partial_overlap(self):
        assert blocking_rate({"a"}, {"a", "b"}) == 0.5

    def test_empty_victim(self):
        assert blocking_rate({"a"}, set()) == 0.0

    def test_empty_censor(self):
        assert blocking_rate(set(), {"a"}) == 0.0


class TestCensorBlacklist:
    def test_more_routers_more_ips(self, small_campaign):
        day = small_campaign.log.days_recorded - 1
        one = censor_blacklist(small_campaign.monitors, 1, day, 1)
        ten = censor_blacklist(small_campaign.monitors, 10, day, 1)
        assert len(one) <= len(ten)
        assert one <= ten

    def test_longer_window_more_ips(self, small_campaign):
        day = small_campaign.log.days_recorded - 1
        short = censor_blacklist(small_campaign.monitors, 5, day, 1)
        long = censor_blacklist(small_campaign.monitors, 5, day, 10)
        assert short <= long
        assert len(long) > len(short)

    def test_invalid_router_count(self, small_campaign):
        with pytest.raises(ValueError):
            censor_blacklist(small_campaign.monitors, 0, 1, 1)
        with pytest.raises(ValueError):
            censor_blacklist(small_campaign.monitors, 999, 1, 1)


class TestVictim:
    def test_victim_known_ips_nonempty(self, small_campaign):
        day = small_campaign.log.days_recorded - 1
        ips = victim_known_ips(small_campaign.victim, day, history_days=2)
        assert len(ips) > 0

    def test_longer_history_knows_more(self, small_campaign):
        day = small_campaign.log.days_recorded - 1
        short = victim_known_ips(small_campaign.victim, day, history_days=1)
        long = victim_known_ips(small_campaign.victim, day, history_days=5)
        assert short <= long


class TestBlockingAssessment:
    def test_assessment_fields(self, small_campaign):
        assessment = blocking_assessment(small_campaign, router_count=10, window_days=5)
        assert assessment.router_count == 10
        assert assessment.window_days == 5
        assert 0.0 <= assessment.rate <= 1.0
        assert assessment.blocked_ip_count <= assessment.victim_ip_count
        assert assessment.blocked_ip_count <= assessment.censor_ip_count

    def test_requires_victim(self):
        result = run_main_campaign(days=2, scale=0.01, include_victim_client=False)
        with pytest.raises(ValueError):
            blocking_assessment(result, router_count=1)

    def test_as_dict(self, small_campaign):
        data = blocking_assessment(small_campaign, router_count=5).as_dict()
        assert set(data) >= {"router_count", "window_days", "rate", "victim_ip_count"}


class TestBlockingCurve:
    def test_figure13_shape(self, small_campaign):
        figure = blocking_curve(
            small_campaign,
            router_counts=[1, 2, 5, 10, 20],
            windows=(1, 5, 10),
        )
        assert set(figure.series) == {"1 day", "5 days", "10 days"}
        one_day = figure.get("1 day")
        five_days = figure.get("5 days")
        # More censor routers never reduce the blocking rate.
        assert one_day.is_monotonic_nondecreasing()
        # A longer blacklist window never reduces the blocking rate.
        for x in one_day.xs:
            assert five_days.y_at(x) >= one_day.y_at(x)
        # All rates are percentages.
        assert all(0.0 <= y <= 100.0 for y in one_day.ys + five_days.ys)

    def test_paper_headline_claims(self, small_campaign):
        """A handful of routers blocks most of the victim's peers; ten routers
        with a 5-day window block well over 90 % (the paper's headline)."""
        figure = blocking_curve(
            small_campaign, router_counts=[1, 6, 10, 20], windows=(1, 5)
        )
        one_day = figure.get("1 day")
        five_days = figure.get("5 days")
        assert one_day.y_at(1) > 40.0
        assert one_day.y_at(6) > 70.0
        assert one_day.y_at(20) > 80.0
        assert five_days.y_at(10) > 90.0

    def test_default_router_counts_cover_all_monitors(self, small_campaign):
        figure = blocking_curve(small_campaign, windows=(1,))
        assert len(figure.get("1 day").points) == len(small_campaign.monitors)

    def test_requires_victim(self):
        result = run_main_campaign(days=2, scale=0.01, include_victim_client=False)
        with pytest.raises(ValueError):
            blocking_curve(result)


class TestBlockingCurveIncrementalSemantics:
    """The incremental blacklist rewrite preserves the original contract."""

    def test_non_positive_router_count_rejected(self, small_campaign):
        with pytest.raises(ValueError, match="router_count must be positive"):
            blocking_curve(small_campaign, router_counts=[0], windows=(1,))

    def test_too_many_routers_rejected(self, small_campaign):
        too_many = len(small_campaign.monitors) + 1
        with pytest.raises(ValueError, match="censor has only"):
            blocking_curve(small_campaign, router_counts=[too_many], windows=(1,))

    def test_caller_order_and_duplicates_preserved(self, small_campaign):
        figure = blocking_curve(
            small_campaign, router_counts=[6, 1, 6], windows=(1,)
        )
        points = figure.get("1 day").points
        assert [x for x, _ in points] == [6.0, 1.0, 6.0]
        ascending = blocking_curve(
            small_campaign, router_counts=[1, 6], windows=(1,)
        ).get("1 day")
        assert points[0][1] == ascending.y_at(6)
        assert points[1][1] == ascending.y_at(1)


class TestPrefixBlockingCurve:
    """Prefix-granular censorship (the PR 9 enrichment-plane scenario)."""

    def test_curve_shape_and_monotonicity(self, small_campaign):
        from repro.core.blocking import prefix_blocking_curve

        figure = prefix_blocking_curve(small_campaign, ("US", "RU", "GB"))
        assert figure.figure_id == "scenario_prefix_blocking"
        cumulative = figure.get("cumulative block")
        single = figure.get("single censor")
        assert len(cumulative.points) == len(single.points) == 3
        assert cumulative.is_monotonic_nondecreasing()
        assert all(0.0 <= y <= 100.0 for y in cumulative.ys + single.ys)
        # The coalition blocks at least as much as any member alone.
        for (_, c), (_, s) in zip(cumulative.points, single.points):
            assert c >= s - 1e-9

    def test_x_axis_is_cumulative_prefix_count(self, small_campaign):
        from repro.core.blocking import censor_profiles, prefix_blocking_curve

        countries = ("US", "RU")
        figure = prefix_blocking_curve(small_campaign, countries)
        profiles = censor_profiles(countries)
        running = 0
        for (x, _), profile in zip(figure.get("cumulative block").points, profiles):
            running += profile.prefix_count
            assert x == running

    def test_censor_profiles_use_provider_tables(self):
        from repro.core.blocking import censor_profiles
        from repro.enrichment import SyntheticProvider
        from repro.sim.geo import default_registry

        provider = SyntheticProvider(default_registry())
        (profile,) = censor_profiles(("US",), provider=provider)
        assert profile.country == "US"
        assert profile.prefixes == provider.country_prefixes("US")
        assert profile.prefix_count == len(profile.prefixes)

    def test_empty_countries_rejected(self):
        from repro.core.blocking import censor_profiles

        with pytest.raises(ValueError, match="at least one country"):
            censor_profiles(())

    def test_requires_victim(self):
        from repro.core.blocking import prefix_blocking_curve

        result = run_main_campaign(days=2, scale=0.01, include_victim_client=False)
        with pytest.raises(ValueError):
            prefix_blocking_curve(result, ("US",))

    def test_note_documents_censor_ranks(self, small_campaign):
        from repro.core.blocking import prefix_blocking_curve

        figure = prefix_blocking_curve(small_campaign, ("US", "RU"))
        notes = " ".join(figure.notes)
        assert "censors by rank" in notes
        assert "US" in notes
