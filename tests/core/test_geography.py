"""Tests for the geographic / AS analyses (Figures 10-12)."""

import pytest

from repro.core.geography import (
    asn_distribution,
    asn_figure,
    asn_span,
    asn_span_figure,
    country_distribution,
    country_figure,
    press_freedom_summary,
    summarize_geography,
)
from repro.core.monitor import ObservationLog
from repro.sim.geo import default_registry


class TestCountryDistribution:
    def test_us_leads(self, small_campaign):
        counts = country_distribution(small_campaign.log)
        assert counts.most_common(1)[0][0] == "US"

    def test_top_six_include_paper_leaders(self, small_campaign):
        counts = country_distribution(small_campaign.log)
        top10 = {code for code, _ in counts.most_common(10)}
        assert {"US", "RU", "GB", "FR"} <= top10

    def test_summary_shares(self, small_campaign):
        summary = summarize_geography(small_campaign.log)
        assert summary.top_country == "US"
        assert 0.25 <= summary.top6_share <= 0.60
        assert summary.top20_share > summary.top6_share
        assert 0.45 <= summary.top20_share <= 0.85
        assert summary.countries_observed > 50
        assert summary.poor_press_freedom_countries >= 10
        assert summary.poor_press_freedom_peers > 0

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            summarize_geography(ObservationLog())

    def test_figure10_cumulative_percentage(self, small_campaign):
        figure = country_figure(small_campaign.log, top_n=10)
        peers = figure.get("observed peers")
        cumulative = figure.get("cumulative percentage")
        assert len(peers.points) == 10
        assert cumulative.is_monotonic_nondecreasing()
        assert cumulative.ys[-1] <= 100.0
        # Counts are ranked in non-increasing order.
        assert all(b <= a for a, b in zip(peers.ys, peers.ys[1:]))


class TestAsnDistribution:
    def test_comcast_is_top_as(self, small_campaign):
        counts = asn_distribution(small_campaign.log)
        assert counts.most_common(1)[0][0] == 7922

    def test_figure11_series(self, small_campaign):
        figure = asn_figure(small_campaign.log, top_n=10)
        assert len(figure.get("observed peers").points) == 10
        assert figure.get("cumulative percentage").is_monotonic_nondecreasing()
        assert any("AS7922" in note for note in figure.notes)


class TestAsnSpan:
    def test_most_peers_in_one_as(self, small_campaign):
        spans = asn_span(small_campaign.log)
        total = sum(spans.values())
        assert spans.get(1, 0) / total > 0.6

    def test_some_peers_span_multiple_ases(self, small_campaign):
        spans = asn_span(small_campaign.log)
        assert sum(count for n, count in spans.items() if n >= 2) > 0

    def test_figure12_totals(self, small_campaign):
        figure = asn_span_figure(small_campaign.log, max_asns=6)
        counts = figure.get("observed peers")
        spans = asn_span(small_campaign.log)
        assert sum(counts.ys) == sum(spans.values())
        percentage = figure.get("percentage")
        assert sum(percentage.ys) == pytest.approx(100.0, abs=0.5)


class TestPressFreedom:
    def test_summary_structure(self, small_campaign):
        summary = press_freedom_summary(small_campaign.log)
        assert summary["countries"] > 0
        assert summary["total_peers"] > 0
        assert len(summary["top"]) <= 5
        top_codes = [code for code, _ in summary["top"]]
        registry = default_registry()
        for code in top_codes:
            assert registry.country(code).poor_press_freedom

    def test_china_among_leaders(self, small_campaign):
        """Section 5.3.2: China leads the poor-press-freedom group."""
        summary = press_freedom_summary(small_campaign.log)
        top_codes = [code for code, _ in summary["top"]]
        assert "CN" in top_codes
