"""Streamed-vs-aggregate equivalence for the PR-3 analysis ports.

Geography, the population split, bridges, and blocking now stream off the
observation log's columnar accumulators.  The old implementations walked
the per-peer :class:`PeerObservationAggregate` dicts; these tests pin the
port by recomputing every ported quantity from ``log.peers`` (the
aggregate compatibility view, unchanged semantics) and asserting the
streamed outputs are identical — including byte-identical rendered text
for the figure tables.
"""

from collections import Counter

import pytest

from repro.core.blocking import blocking_curve, censor_blacklist, victim_known_ips
from repro.core.bridges import bridge_pool_summary, bridge_survival_curve
from repro.core.geography import (
    asn_distribution,
    asn_figure,
    asn_span,
    asn_span_figure,
    country_distribution,
    country_figure,
    summarize_geography,
)
from repro.core.monitor import ObservationLog, PeerObservationAggregate
from repro.core.population import classify_unknown_ip, summarize_population
from repro.core.reporting import render_campaign_summary
from repro.core import run_main_campaign


# --------------------------------------------------------------------------- #
# Aggregate-based reference implementations (the pre-port semantics)
# --------------------------------------------------------------------------- #
def _reference_country_distribution(log: ObservationLog) -> Counter:
    counts: Counter = Counter()
    for aggregate in log.peers.values():
        for country in aggregate.countries:
            counts[country] += 1
    return counts


def _reference_asn_distribution(log: ObservationLog) -> Counter:
    counts: Counter = Counter()
    for aggregate in log.peers.values():
        for asn in aggregate.asns:
            counts[asn] += 1
    return counts


def _reference_asn_span(log: ObservationLog) -> Counter:
    counts: Counter = Counter()
    for aggregate in log.peers.values():
        if aggregate.has_known_ip:
            counts[len(aggregate.asns)] += 1
    return counts


def _reference_classify_unknown_ip(log: ObservationLog) -> dict:
    ever_firewalled = ever_hidden = both = never_addressed = 0
    for aggregate in log.peers.values():
        was_firewalled = aggregate.firewalled_days > 0
        was_hidden = aggregate.hidden_days > 0
        if was_firewalled:
            ever_firewalled += 1
        if was_hidden:
            ever_hidden += 1
        if was_firewalled and was_hidden:
            both += 1
        if not aggregate.has_known_ip:
            never_addressed += 1
    return {
        "ever_firewalled": ever_firewalled,
        "ever_hidden": ever_hidden,
        "both_statuses": both,
        "never_published_address": never_addressed,
    }


def _reference_bridge_pool(result, censor_routers=10, window=5, new_age=2):
    evaluation_day = len(result.log.daily) - 1
    blacklist = censor_blacklist(result.monitors, censor_routers, evaluation_day, window)
    total = unblocked = new = old = 0
    for aggregate in result.log.peers.values():
        if evaluation_day not in aggregate.days_observed or not aggregate.has_known_ip:
            continue
        total += 1
        if (aggregate.ipv4_addresses | aggregate.ipv6_addresses) & blacklist:
            continue
        unblocked += 1
        if evaluation_day - aggregate.first_day <= new_age:
            new += 1
        else:
            old += 1
    return total, unblocked, new, old


class TestStreamedEquivalence:
    def test_country_distribution_matches_aggregates(self, small_campaign):
        log = small_campaign.log
        assert country_distribution(log) == _reference_country_distribution(log)

    def test_asn_distribution_matches_aggregates(self, small_campaign):
        log = small_campaign.log
        assert asn_distribution(log) == _reference_asn_distribution(log)

    def test_asn_span_matches_aggregates(self, small_campaign):
        log = small_campaign.log
        assert asn_span(log) == _reference_asn_span(log)

    def test_geography_figures_deterministic_across_runs(self):
        """The rendered Figure 10-12 tables are byte-identical between two
        independent runs at a fixed seed.

        (The pre-port aggregate path iterated Python *sets* of country
        strings, whose tie order depends on string-hash randomisation; the
        streamed path breaks count ties by stable first-observation order,
        so the tables are reproducible across processes as well.)
        """
        first = run_main_campaign(days=4, scale=0.02, seed=31).log
        second = run_main_campaign(days=4, scale=0.02, seed=31).log
        for figure_fn in (country_figure, asn_figure, asn_span_figure):
            assert figure_fn(first).to_text() == figure_fn(second).to_text()
        assert summarize_geography(first).as_dict() == summarize_geography(
            second
        ).as_dict()

    def test_classify_unknown_ip_matches_aggregates(self, small_campaign):
        log = small_campaign.log
        assert classify_unknown_ip(log) == _reference_classify_unknown_ip(log)

    def test_bridge_pool_matches_aggregates(self, small_campaign):
        total, unblocked, new, old = _reference_bridge_pool(small_campaign)
        summary = bridge_pool_summary(small_campaign)
        assert summary.total_online_known_ip == total
        assert summary.unblocked_known_ip == unblocked
        assert summary.unblocked_newly_joined == new
        assert summary.unblocked_long_lived == old

    def test_bridge_survival_cohort_matches_aggregates(self, small_campaign):
        log = small_campaign.log
        cohort_day = max(0, len(log.daily) - 4)
        reference = [
            aggregate.ipv4_addresses | aggregate.ipv6_addresses
            for aggregate in log.peers.values()
            if aggregate.first_day == cohort_day and aggregate.has_known_ip
        ]
        streamed = log.known_ip_cohort_addresses(cohort_day)
        assert sorted(map(sorted, streamed)) == sorted(map(sorted, reference))
        figure = bridge_survival_curve(small_campaign, cohort_day=cohort_day)
        assert figure.figure_id == "ablation_bridges"

    def test_blocking_curve_byte_identical_to_naive_union(self, small_campaign):
        """The incremental blacklist accumulation must reproduce the naive
        per-count union rebuild byte for byte."""
        streamed = blocking_curve(small_campaign).to_text(".6f")
        # Naive reference: full union per (window, count) pair.
        from repro.analysis.series import FigureData
        from repro.core.blocking import blocking_rate

        evaluation_day = len(small_campaign.log.daily) - 1
        figure = FigureData(
            figure_id="figure_13",
            title="Blocking rates under different blacklist time windows",
            x_label="routers under censor control",
            y_label="blocking rate (%)",
        )
        victim_ips = victim_known_ips(small_campaign.victim, evaluation_day, 2)
        figure.add_note(
            f"victim netDb: {len(victim_ips)} peer IPs "
            f"(history window 2 days, evaluation day {evaluation_day + 1})"
        )
        for window in (1, 5, 10, 20, 30):
            series = figure.new_series(f"{window} day" + ("s" if window > 1 else ""))
            for count in range(1, len(small_campaign.monitors) + 1):
                censor_ips = censor_blacklist(
                    small_campaign.monitors, count, evaluation_day, window
                )
                series.add(count, blocking_rate(censor_ips, victim_ips) * 100.0)
        assert streamed == figure.to_text(".6f")


class TestNoAggregateMaterialisation:
    """Acceptance: the whole summary pipeline never touches ``log.peers``."""

    def test_render_campaign_summary_without_aggregates(self, monkeypatch):
        result = run_main_campaign(days=4, scale=0.02, seed=77)

        def _forbidden(self):
            raise AssertionError(
                "render_campaign_summary materialised per-peer aggregates"
            )

        monkeypatch.setattr(ObservationLog, "_materialise_peers", _forbidden)
        original_init = PeerObservationAggregate.__init__

        def _forbidden_init(self, *args, **kwargs):
            raise AssertionError("a PeerObservationAggregate was constructed")

        monkeypatch.setattr(PeerObservationAggregate, "__init__", _forbidden_init)
        try:
            summary = render_campaign_summary(result)
        finally:
            monkeypatch.setattr(PeerObservationAggregate, "__init__", original_init)
        assert "Population (Section 5.1)" in summary
        assert "Geography (Section 5.3.2)" in summary
        # The censorship analyses stream too.
        blocking_curve(result)
        bridge_pool_summary(result)
        bridge_survival_curve(result)
        summarize_population(result.log)
        summarize_geography(result.log)
        classify_unknown_ip(result.log)

    def test_streamed_summary_equals_aggregate_backed_summary(self):
        """Same campaign, summary rendered before and after the aggregate
        view has been materialised — byte-identical either way."""
        fresh = run_main_campaign(days=4, scale=0.02, seed=78)
        streamed_text = render_campaign_summary(fresh)
        assert fresh.log._peers_cache is None  # nothing materialised
        _ = fresh.log.peers  # force the compatibility view
        assert render_campaign_summary(fresh) == streamed_text
