"""Tests for campaign orchestration and the methodology experiments."""

import pytest

from repro.core.campaign import (
    CampaignConfig,
    MeasurementCampaign,
    bandwidth_sweep,
    router_count_sweep,
    run_main_campaign,
    scaled_population_config,
    single_router_experiment,
)
from repro.sim.observation import MonitorMode, MonitorSpec


class TestScaledConfig:
    def test_full_scale(self):
        config = scaled_population_config(1.0, days=90)
        assert config.target_daily_population == 30_500
        assert config.horizon_days == 90

    def test_small_scale_floor(self):
        config = scaled_population_config(0.001, days=5)
        assert config.target_daily_population >= 200

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_population_config(0.0)


class TestCampaignConfigValidation:
    def test_days_must_fit_horizon(self):
        population = scaled_population_config(0.02, days=3)
        with pytest.raises(ValueError):
            CampaignConfig(
                population=population,
                monitors=[MonitorSpec("m", MonitorMode.FLOODFILL)],
                days=5,
            )

    def test_requires_monitors(self):
        population = scaled_population_config(0.02, days=3)
        with pytest.raises(ValueError):
            CampaignConfig(population=population, monitors=[], days=3)

    def test_requires_positive_days(self):
        population = scaled_population_config(0.02, days=3)
        with pytest.raises(ValueError):
            CampaignConfig(
                population=population,
                monitors=[MonitorSpec("m", MonitorMode.FLOODFILL)],
                days=0,
            )


class TestMainCampaign(object):
    def test_result_structure(self, small_campaign):
        result = small_campaign
        assert len(result.monitors) == 20
        assert result.victim is not None
        assert result.log.days_recorded == 12
        assert len(result.daily_online_population) == 12
        assert len(result.cumulative_union_by_day) == 12
        assert all(len(row) == 20 for row in result.cumulative_union_by_day)

    def test_coverage_is_high(self, small_campaign):
        """Twenty monitors observe the large majority of the daily population."""
        assert small_campaign.coverage_of_population() > 0.80

    def test_daily_population_stable(self, small_campaign):
        target = small_campaign.config.population.target_daily_population
        for online in small_campaign.daily_online_population:
            assert 0.7 * target <= online <= 1.3 * target

    def test_mean_cumulative_union_monotonic(self, small_campaign):
        curve = small_campaign.mean_cumulative_union()
        assert len(curve) == 20
        assert curve == sorted(curve)

    def test_victim_sees_fewer_peers_than_monitors(self, small_campaign):
        victim_mean = small_campaign.victim.mean_daily_observed()
        monitor_mean = small_campaign.monitors[0].mean_daily_observed()
        assert victim_mean < monitor_mean

    def test_monitors_collect_daily_ips(self, small_campaign):
        assert small_campaign.monitors[0].daily_ip_sets
        assert len(small_campaign.monitors[0].daily_ip_sets) == 12

    def test_run_without_victim(self):
        result = run_main_campaign(
            days=3, scale=0.01, include_victim_client=False, collect_daily_ips=False
        )
        assert result.victim is None
        assert not result.monitors[0].daily_ip_sets


class TestSingleRouterExperiment:
    def test_figure2_shape(self):
        figure = single_router_experiment(days_per_mode=2, scale=0.02, seed=3)
        floodfill = figure.get("floodfill")
        non_floodfill = figure.get("non-floodfill")
        assert len(floodfill.points) == 2
        assert len(non_floodfill.points) == 2
        assert all(y > 0 for y in floodfill.ys + non_floodfill.ys)
        # Both modes observe a large fraction but not all of the network.
        config_population = 30_500 * 0.02
        for y in floodfill.ys + non_floodfill.ys:
            assert 0.25 * config_population < y < 0.9 * config_population


class TestBandwidthSweep:
    def test_figure3_shape(self):
        bandwidths = (128, 2000, 5000)
        figure = bandwidth_sweep(bandwidths_kbps=bandwidths, days=2, scale=0.02, seed=4)
        both = figure.get("both")
        floodfill = figure.get("floodfill")
        non_floodfill = figure.get("non-floodfill")
        assert [p[0] for p in both.points] == list(bandwidths)
        # The combined view dominates each individual mode at every bandwidth.
        for x in bandwidths:
            assert both.y_at(x) >= floodfill.y_at(x)
            assert both.y_at(x) >= non_floodfill.y_at(x)
        # Floodfill wins at 128 KB/s, non-floodfill wins at 5 MB/s (Figure 3).
        assert floodfill.y_at(128) > non_floodfill.y_at(128)
        assert non_floodfill.y_at(5000) > floodfill.y_at(5000)


class TestRouterCountSweep:
    def test_figure4_shape(self):
        figure, result = router_count_sweep(max_routers=12, days=2, scale=0.02, seed=5)
        series = figure.get("cumulative observed")
        assert len(series.points) == 12
        assert series.is_monotonic_nondecreasing()
        # Diminishing returns: the last router adds less than the second one.
        gains = [b - a for a, b in zip(series.ys, series.ys[1:])]
        assert gains[-1] < gains[0]
        # A handful of routers already observes most of what twelve observe.
        assert series.ys[5] / series.ys[-1] > 0.8

    def test_invalid_router_count(self):
        with pytest.raises(ValueError):
            router_count_sweep(max_routers=0, days=1, scale=0.01)
