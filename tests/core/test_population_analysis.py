"""Tests for the Section 5.1 population analyses (Figures 5 and 6)."""

import pytest

from repro.core.population import (
    classify_unknown_ip,
    daily_population_figure,
    summarize_population,
    unknown_ip_figure,
)
from repro.core.monitor import ObservationLog


class TestSummarizePopulation:
    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            summarize_population(ObservationLog())

    def test_headline_numbers(self, small_campaign):
        summary = summarize_population(small_campaign.log)
        assert summary.days == 12
        assert summary.mean_daily_peers > 0
        # Unique IPs are fewer than unique peers because of unknown-IP peers
        # (the paper's Figure 5 headline observation).
        assert summary.mean_daily_all_ips < summary.mean_daily_peers
        assert summary.mean_daily_ipv4 >= summary.mean_daily_ipv6
        # Roughly half the peers have unknown IPs.
        assert 0.35 <= summary.unknown_ip_share <= 0.65
        # Firewalled peers dominate the unknown-IP group.
        assert summary.mean_daily_firewalled > summary.mean_daily_hidden
        assert summary.unique_peers >= summary.mean_daily_peers

    def test_as_dict_complete(self, small_campaign):
        data = summarize_population(small_campaign.log).as_dict()
        assert set(data) >= {
            "mean_daily_peers",
            "mean_daily_firewalled",
            "mean_daily_hidden",
            "unknown_ip_share",
            "unique_peers",
        }


class TestDailyPopulationFigure:
    def test_figure5_series(self, small_campaign):
        figure = daily_population_figure(small_campaign.log)
        assert set(figure.series) == {"routers", "all IP", "IPv4", "IPv6"}
        routers = figure.get("routers")
        all_ip = figure.get("all IP")
        assert len(routers.points) == 12
        for x in routers.xs:
            assert all_ip.y_at(x) <= routers.y_at(x)
            assert figure.get("IPv4").y_at(x) + figure.get("IPv6").y_at(x) == pytest.approx(
                all_ip.y_at(x)
            )

    def test_figure5_renders(self, small_campaign):
        text = daily_population_figure(small_campaign.log).to_text()
        assert "figure_05" in text
        assert "IPv4" in text


class TestUnknownIpFigure:
    def test_figure6_series(self, small_campaign):
        figure = unknown_ip_figure(small_campaign.log)
        assert set(figure.series) == {"unknown-IP", "firewalled", "hidden", "overlapping"}
        for x in figure.get("unknown-IP").xs:
            unknown = figure.get("unknown-IP").y_at(x)
            firewalled = figure.get("firewalled").y_at(x)
            hidden = figure.get("hidden").y_at(x)
            assert unknown == pytest.approx(firewalled + hidden)
            assert firewalled > hidden

    def test_overlap_grows_after_first_day(self, small_campaign):
        figure = unknown_ip_figure(small_campaign.log)
        overlap = figure.get("overlapping")
        assert overlap.y_at(1) == 0  # no history on day one
        assert overlap.ys[-1] > 0  # flapping peers detected later


class TestClassifyUnknownIp:
    def test_campaign_level_classification(self, small_campaign):
        classes = classify_unknown_ip(small_campaign.log)
        assert classes["ever_firewalled"] > classes["ever_hidden"]
        assert classes["both_statuses"] > 0
        assert classes["both_statuses"] <= min(
            classes["ever_firewalled"], classes["ever_hidden"]
        )
        assert classes["never_published_address"] > 0
