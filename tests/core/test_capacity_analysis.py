"""Tests for the capacity analyses (Figure 9, Table 1, Section 5.3.1)."""

import pytest

from repro.core.capacity_analysis import (
    OFFICIAL_AUTO_FLOODFILL_SHARE,
    bandwidth_breakdown,
    bandwidth_breakdown_table,
    capacity_figure,
    estimate_population,
    flag_distribution,
)
from repro.core.monitor import ObservationLog


class TestFlagDistribution:
    def test_figure9_ordering(self, small_campaign):
        distribution = flag_distribution(small_campaign.log)
        assert set(distribution) == {"K", "L", "M", "N", "O", "P", "X"}
        # L is the default tier and dominates; N is second (Figure 9).
        assert distribution["L"] == max(distribution.values())
        assert distribution["N"] == sorted(distribution.values())[-2]
        assert distribution["L"] > 2 * distribution["N"]

    def test_distribution_sums_to_daily_mean(self, small_campaign):
        distribution = flag_distribution(small_campaign.log)
        total = sum(distribution.values())
        assert total == pytest.approx(small_campaign.log.mean_daily_observed(), rel=0.01)

    def test_capacity_figure(self, small_campaign):
        figure = capacity_figure(small_campaign.log)
        series = figure.get("observed peers")
        assert len(series.points) == 7
        assert any("dominant tier: L" in note for note in figure.notes)


class TestBandwidthBreakdown:
    def test_groups_present(self, small_campaign):
        breakdown = bandwidth_breakdown(small_campaign.log)
        assert set(breakdown) == {"floodfill", "reachable", "unreachable", "total"}
        for group in breakdown.values():
            assert set(group) == {"K", "L", "M", "N", "O", "P", "X"}
            assert all(0.0 <= value <= 100.0 for value in group.values())

    def test_floodfill_group_dominated_by_qualified_tiers(self, small_campaign):
        """Table 1: the floodfill group is dominated by N, not by L."""
        breakdown = bandwidth_breakdown(small_campaign.log)
        floodfill = breakdown["floodfill"]
        total = breakdown["total"]
        assert floodfill["N"] > total["N"]
        assert floodfill["L"] < total["L"]
        assert floodfill["N"] == max(floodfill.values())

    def test_table_rows_shape(self, small_campaign):
        rows = bandwidth_breakdown_table(small_campaign.log)
        assert len(rows) == 7
        assert [row[0] for row in rows] == ["K", "L", "M", "N", "O", "P", "X"]
        assert all(len(row) == 5 for row in rows)

    def test_empty_log_gives_zero_percentages(self):
        breakdown = bandwidth_breakdown(ObservationLog())
        assert all(value == 0.0 for group in breakdown.values() for value in group.values())


class TestPopulationEstimate:
    def test_requires_recorded_days(self):
        with pytest.raises(ValueError):
            estimate_population(ObservationLog())

    def test_invalid_auto_share(self, small_campaign):
        with pytest.raises(ValueError):
            estimate_population(small_campaign.log, auto_floodfill_share=0.0)

    def test_extrapolation_close_to_observed(self, small_campaign):
        """Section 5.3.1: the floodfill extrapolation lands near the observed
        daily population (the paper gets 31,950 vs ~30.5K observed)."""
        estimate = estimate_population(small_campaign.log)
        assert estimate.observed_floodfills > 0
        assert 0.05 < estimate.observed_floodfill_share < 0.15
        assert 0.5 < estimate.qualified_share_of_floodfills < 0.95
        assert estimate.qualified_floodfills <= estimate.observed_floodfills
        assert 0.8 < estimate.estimate_to_observed_ratio < 1.6
        assert estimate.auto_floodfill_share == OFFICIAL_AUTO_FLOODFILL_SHARE

    def test_as_dict(self, small_campaign):
        data = estimate_population(small_campaign.log).as_dict()
        assert set(data) >= {
            "observed_floodfills",
            "qualified_floodfills",
            "estimated_population",
            "estimate_to_observed_ratio",
        }
