"""Tests for the bridge-strategy analyses (Section 7.1)."""

import pytest

from repro.core.bridges import bridge_pool_summary, bridge_survival_curve


class TestBridgePoolSummary:
    def test_pool_composition(self, small_campaign):
        summary = bridge_pool_summary(
            small_campaign, censor_routers=10, blacklist_window_days=5
        )
        assert summary.total_online_known_ip > 0
        assert summary.unblocked_known_ip <= summary.total_online_known_ip
        assert (
            summary.unblocked_newly_joined + summary.unblocked_long_lived
            == summary.unblocked_known_ip
        )
        assert 0.0 <= summary.unblocked_share <= 1.0
        # The firewalled pool (unblockable by address) is substantial.
        assert summary.firewalled_pool > 0.2 * summary.total_online_known_ip

    def test_stronger_censor_leaves_fewer_bridges(self, small_campaign):
        weak = bridge_pool_summary(small_campaign, censor_routers=1, blacklist_window_days=1)
        strong = bridge_pool_summary(small_campaign, censor_routers=20, blacklist_window_days=10)
        assert strong.unblocked_share <= weak.unblocked_share

    def test_new_peers_overrepresented_among_unblocked(self, small_campaign):
        """Section 7.1: the unblocked addresses often belong to newly joined
        peers, so their share among unblocked peers exceeds their share of
        the whole online population."""
        summary = bridge_pool_summary(
            small_campaign, censor_routers=20, blacklist_window_days=5, new_peer_age_days=2
        )
        if summary.unblocked_known_ip == 0:
            pytest.skip("censor blocked every observed address at this scale")
        day = summary.evaluation_day
        new_today = sum(
            1
            for aggregate in small_campaign.log.peers.values()
            if day in aggregate.days_observed
            and aggregate.has_known_ip
            and day - aggregate.first_day <= 2
        )
        overall_new_share = new_today / max(1, summary.total_online_known_ip)
        assert summary.new_peer_share_of_unblocked >= overall_new_share * 0.8

    def test_as_dict(self, small_campaign):
        data = bridge_pool_summary(small_campaign).as_dict()
        assert set(data) >= {
            "unblocked_known_ip",
            "firewalled_pool",
            "unblocked_share",
            "new_peer_share_of_unblocked",
        }


class TestBridgeSurvival:
    def test_survival_curve_decreases(self, small_campaign):
        figure = bridge_survival_curve(
            small_campaign,
            censor_routers=10,
            blacklist_window_days=30,
            cohort_day=5,
            horizon_days=5,
        )
        series = figure.get("new-peer bridges unblocked")
        if not series.points:
            pytest.skip("no newly joined peers on the cohort day at this scale")
        # Survival never increases: once blacklisted, always blacklisted
        # within the window.
        assert all(b <= a + 1e-9 for a, b in zip(series.ys, series.ys[1:]))
        assert 0.0 <= series.ys[-1] <= 100.0
        assert series.xs[0] == 0.0

    def test_default_cohort_day(self, small_campaign):
        figure = bridge_survival_curve(small_campaign, horizon_days=3)
        assert figure.figure_id == "ablation_bridges"
