"""Tests for the shared-exposure figure suite and cache equivalence.

The acceptance contract of the exposure engine: sweep outputs served from a
warm cache are byte-identical to a rebuild-from-scratch run at the same
seed, and the whole suite shares exactly one population build.
"""

import numpy as np
import pytest

from repro.core.campaign import (
    bandwidth_sweep,
    router_count_sweep,
    run_figure_suite,
    run_main_campaign,
    single_router_experiment,
)
from repro.sim.exposure import ExposureEngine

SCALE = 0.02
SEED = 424
DAYS = 6


def figure_points(figure):
    return {name: series.points for name, series in figure.series.items()}


class TestCachedEquivalence:
    """Cached-exposure results == rebuild-from-scratch results, byte for byte."""

    def test_bandwidth_sweep_identical_on_warm_engine(self):
        warm = ExposureEngine()
        # Warm the cache with a different experiment over the same key.
        run_main_campaign(days=DAYS, scale=SCALE, seed=SEED, engine=warm, horizon_days=DAYS)
        cached = bandwidth_sweep(
            bandwidths_kbps=(128, 2000, 5000), days=3, scale=SCALE, seed=SEED,
            engine=warm, horizon_days=DAYS,
        )
        scratch = bandwidth_sweep(
            bandwidths_kbps=(128, 2000, 5000), days=3, scale=SCALE, seed=SEED,
            engine=ExposureEngine(), horizon_days=DAYS,
        )
        assert figure_points(cached) == figure_points(scratch)
        assert warm.hits >= 1

    def test_router_count_sweep_identical_on_warm_engine(self):
        warm = ExposureEngine()
        run_main_campaign(days=DAYS, scale=SCALE, seed=SEED, engine=warm, horizon_days=DAYS)
        cached_fig, cached_result = router_count_sweep(
            max_routers=8, days=3, scale=SCALE, seed=SEED, engine=warm, horizon_days=DAYS
        )
        scratch_fig, scratch_result = router_count_sweep(
            max_routers=8, days=3, scale=SCALE, seed=SEED,
            engine=ExposureEngine(), horizon_days=DAYS,
        )
        assert figure_points(cached_fig) == figure_points(scratch_fig)
        assert cached_result.cumulative_union_by_day == scratch_result.cumulative_union_by_day
        assert [d.observed_peers for d in cached_result.log.daily] == [
            d.observed_peers for d in scratch_result.log.daily
        ]
        assert cached_result.daily_online_population == scratch_result.daily_online_population

    def test_single_router_experiment_identical_on_warm_engine(self):
        warm = ExposureEngine()
        bandwidth_sweep(days=2, scale=SCALE, seed=SEED, engine=warm, horizon_days=DAYS)
        cached = single_router_experiment(
            days_per_mode=2, scale=SCALE, seed=SEED, engine=warm, horizon_days=DAYS
        )
        scratch = single_router_experiment(
            days_per_mode=2, scale=SCALE, seed=SEED,
            engine=ExposureEngine(), horizon_days=DAYS,
        )
        assert figure_points(cached) == figure_points(scratch)

    def test_main_campaign_identical_across_engines(self):
        a = run_main_campaign(days=3, scale=SCALE, seed=SEED, engine=ExposureEngine())
        b = run_main_campaign(days=3, scale=SCALE, seed=SEED, engine=ExposureEngine())
        assert [d.observed_peers for d in a.log.daily] == [
            d.observed_peers for d in b.log.daily
        ]
        assert a.monitors[0].cumulative_peer_ids == b.monitors[0].cumulative_peer_ids

    def test_monitor_masks_shared_across_experiments(self):
        """Identically named monitors see identical peers across experiments."""
        engine = ExposureEngine()
        campaign = run_main_campaign(
            days=3, scale=SCALE, seed=SEED, engine=engine, horizon_days=DAYS,
            floodfill_monitors=2, non_floodfill_monitors=2,
        )
        _, sweep_result = router_count_sweep(
            max_routers=4, days=3, scale=SCALE, seed=SEED,
            engine=engine, horizon_days=DAYS,
        )
        campaign_by_name = {m.name: m for m in campaign.monitors}
        sweep_by_name = {m.name: m for m in sweep_result.monitors}
        shared_names = set(campaign_by_name) & set(sweep_by_name)
        assert shared_names
        for name in shared_names:
            assert (
                campaign_by_name[name].daily_observed_counts
                == sweep_by_name[name].daily_observed_counts
            )


class TestFigureSuite:
    def test_suite_structure_and_single_population_build(self):
        suite = run_figure_suite(days=DAYS, scale=SCALE, seed=SEED, max_routers=6)
        # One population build serves the campaign, fig 2, and both sweeps.
        assert suite.engine.misses == 1
        assert suite.engine.hits >= 3
        assert suite.campaign.log.days_recorded == DAYS
        for figure in (suite.figure2, suite.figure3, suite.figure4):
            assert figure.series
            for series in figure.series.values():
                assert series.points
        assert suite.ip_churn.known_ip_peers > 0
        assert suite.flag_distribution
        assert set(suite.bandwidth_breakdown) == {
            "floodfill", "reachable", "unreachable", "total",
        }
        for values in suite.longevity.values():
            assert values["intermittent"] >= values["continuous"]

    def test_suite_deterministic(self):
        a = run_figure_suite(days=4, scale=SCALE, seed=11, max_routers=4)
        b = run_figure_suite(days=4, scale=SCALE, seed=11, max_routers=4)
        assert figure_points(a.figure3) == figure_points(b.figure3)
        assert figure_points(a.figure4) == figure_points(b.figure4)
        assert a.ip_churn.as_dict() == b.ip_churn.as_dict()
        assert a.longevity == b.longevity

    def test_suite_rejects_tiny_runs(self):
        with pytest.raises(ValueError):
            run_figure_suite(days=1, scale=SCALE)


class TestColumnarAnalysisEquivalence:
    """The accumulator-backed analyses equal the aggregate-based reference."""

    def test_fast_paths_match_aggregates(self):
        from repro.core.churn_analysis import ip_churn, longevity

        campaign = run_main_campaign(days=5, scale=SCALE, seed=77)
        log = campaign.log
        peers = list(log.peers.values())

        continuous, intermittent = log.presence_lengths()
        assert sorted(continuous.tolist()) == sorted(
            p.longest_continuous_run() for p in peers
        )
        assert sorted(intermittent.tolist()) == sorted(
            p.observation_span_days for p in peers
        )

        counts = log.ipv4_address_counts()
        known = [p for p in peers if p.has_known_ip]
        assert sorted(counts.tolist()) == sorted(p.address_count for p in known)

        summary = ip_churn(log)
        assert summary.known_ip_peers == len(known)
        assert summary.single_ip_peers == sum(
            1 for p in known if p.address_count == 1
        )

        values = longevity(log, thresholds=(2, 4))
        for threshold in (2, 4):
            expected_cont = (
                sum(1 for p in peers if p.longest_continuous_run() > threshold)
                / len(peers) * 100.0
            )
            assert values[threshold]["continuous"] == pytest.approx(expected_cont)

    def test_breakdown_matches_aggregates(self):
        from repro.core.capacity_analysis import bandwidth_breakdown

        campaign = run_main_campaign(days=4, scale=SCALE, seed=78)
        log = campaign.log
        breakdown = bandwidth_breakdown(log)
        peers = list(log.peers.values())
        total = len(peers)
        for tier, share in breakdown["total"].items():
            expected = (
                sum(1 for p in peers if tier in p.advertised_flag_days)
                / total * 100.0
            )
            assert share == pytest.approx(expected)
        floodfills = [p for p in peers if p.floodfill_days > 0]
        for tier, share in breakdown["floodfill"].items():
            expected = (
                sum(1 for p in floodfills if tier in p.advertised_flag_days)
                / len(floodfills) * 100.0
            )
            assert share == pytest.approx(expected)
