"""Tests for monitoring routers and the observation log."""

import numpy as np
import pytest

from repro.core.monitor import MonitoringRouter, ObservationLog, PeerObservationAggregate
from repro.sim.observation import MonitorMode, MonitorSpec
from repro.sim.population import I2PPopulation, PopulationConfig


@pytest.fixture(scope="module")
def views():
    population = I2PPopulation(
        PopulationConfig(target_daily_population=400, horizon_days=5, seed=21)
    )
    return list(population.iter_days())


def all_indices(view):
    return np.arange(len(view.snapshots))


class TestMonitoringRouter:
    def test_record_day_accumulates(self, views):
        monitor = MonitoringRouter(
            spec=MonitorSpec("m", MonitorMode.FLOODFILL), collect_daily_ips=True
        )
        for view in views[:2]:
            monitor.record_day(view, all_indices(view))
        assert len(monitor.daily_observed_counts) == 2
        assert monitor.mean_daily_observed() > 0
        assert len(monitor.cumulative_peer_ids) >= monitor.daily_observed_counts[0]

    def test_ips_in_window(self, views):
        monitor = MonitoringRouter(
            spec=MonitorSpec("m", MonitorMode.FLOODFILL), collect_daily_ips=True
        )
        for view in views[:3]:
            monitor.record_day(view, all_indices(view))
        one_day = monitor.ips_in_window(2, 1)
        three_days = monitor.ips_in_window(2, 3)
        assert one_day <= three_days
        assert len(three_days) > 0

    def test_ips_in_window_requires_collection(self, views):
        monitor = MonitoringRouter(spec=MonitorSpec("m", MonitorMode.FLOODFILL))
        monitor.record_day(views[0], all_indices(views[0]))
        with pytest.raises(RuntimeError):
            monitor.ips_in_window(0, 1)

    def test_ips_in_window_invalid_window(self, views):
        monitor = MonitoringRouter(
            spec=MonitorSpec("m", MonitorMode.FLOODFILL), collect_daily_ips=True
        )
        monitor.record_day(views[0], all_indices(views[0]))
        with pytest.raises(ValueError):
            monitor.ips_in_window(0, 0)

    def test_daily_peer_sets_collection(self, views):
        monitor = MonitoringRouter(
            spec=MonitorSpec("m", MonitorMode.FLOODFILL), collect_daily_peers=True
        )
        monitor.record_day(views[0], all_indices(views[0]))
        assert len(monitor.daily_peer_sets) == 1
        assert len(monitor.daily_peer_sets[0]) == views[0].online_count

    def test_mean_daily_observed_empty(self):
        monitor = MonitoringRouter(spec=MonitorSpec("m", MonitorMode.CLIENT))
        assert monitor.mean_daily_observed() == 0.0


class TestObservationLog:
    def test_record_day_daily_stats(self, views):
        log = ObservationLog()
        stats = log.record_day(views[0], all_indices(views[0]))
        assert stats.observed_peers == views[0].online_count
        assert stats.known_ip_peers + stats.unknown_ip_peers == stats.observed_peers
        assert stats.firewalled_peers == views[0].firewalled_count
        assert stats.hidden_peers == views[0].hidden_count
        assert stats.new_peer_ids == stats.observed_peers
        assert sum(stats.tier_counts.values()) == stats.observed_peers

    def test_unique_peer_count_grows_then_stabilises(self, views):
        log = ObservationLog()
        counts = []
        for view in views:
            log.record_day(view, all_indices(view))
            counts.append(log.unique_peer_count)
        assert counts == sorted(counts)
        assert counts[-1] > views[0].online_count

    def test_mean_daily_helpers(self, views):
        log = ObservationLog()
        for view in views:
            log.record_day(view, all_indices(view))
        assert log.mean_daily_observed() == pytest.approx(
            log.mean_daily("observed_peers")
        )
        tiers = log.mean_daily_tier_counts()
        assert "L" in tiers
        assert sum(tiers.values()) == pytest.approx(log.mean_daily_observed(), rel=0.01)

    def test_empty_log_means_zero(self):
        log = ObservationLog()
        assert log.mean_daily_observed() == 0.0
        assert log.mean_daily_tier_counts() == {}
        assert log.days_recorded == 0


class TestPeerObservationAggregate:
    def _aggregate_from(self, views, peer_id):
        log = ObservationLog()
        for view in views:
            log.record_day(view, all_indices(view))
        return log.peers[peer_id]

    def test_observation_span_and_runs(self, views):
        aggregate = PeerObservationAggregate(peer_id=b"\x01" * 32, first_day=0, last_day=0)
        for day in (0, 1, 2, 5):
            aggregate.days_observed.add(day)
            aggregate.first_day = min(aggregate.first_day, day)
            aggregate.last_day = max(aggregate.last_day, day)
        assert aggregate.observation_span_days == 6
        assert aggregate.longest_continuous_run() == 3
        assert aggregate.observed_day_count == 4

    def test_empty_run(self):
        aggregate = PeerObservationAggregate(peer_id=b"\x01" * 32, first_day=3, last_day=3)
        assert aggregate.longest_continuous_run() == 0

    def test_address_and_flag_accumulation(self, views):
        log = ObservationLog()
        for view in views:
            log.record_day(view, all_indices(view))
        known = [p for p in log.peers.values() if p.has_known_ip]
        assert known
        sample = known[0]
        assert sample.address_count >= 1
        assert sample.countries
        assert sample.asns
        assert sample.dominant_tier() is not None
        unknown = [p for p in log.peers.values() if not p.has_known_ip]
        assert unknown
        assert all(p.address_count == 0 for p in unknown)
