"""Robustness and failure-injection tests for the measurement pipeline.

These tests probe the edges the paper's methodology would also hit:
degenerate monitor fleets, extremely low-bandwidth monitors, campaigns
evaluated on their first day, and sensitivity of the headline shares to the
random seed (the calibrated shapes must not be a one-seed accident).
"""

import pytest

from repro.core import (
    CampaignConfig,
    MeasurementCampaign,
    blocking_assessment,
    run_main_campaign,
    scaled_population_config,
    summarize_population,
)
from repro.core.blocking import censor_blacklist
from repro.core.capacity_analysis import estimate_population
from repro.sim.observation import MonitorMode, MonitorSpec


class TestDegenerateFleets:
    def test_single_low_bandwidth_monitor(self):
        """A 128 KB/s monitor still observes peers, but far fewer than the
        well-provisioned fleet (the Figure 3 low end)."""
        config = CampaignConfig(
            population=scaled_population_config(0.02, days=3, seed=11),
            monitors=[MonitorSpec("weak", MonitorMode.NON_FLOODFILL, 128.0)],
            days=3,
            seed=11,
        )
        result = MeasurementCampaign(config).run()
        coverage = result.coverage_of_population()
        assert 0.05 < coverage < 0.6

    def test_floodfill_only_fleet_sees_less_than_mixed(self):
        """Running a single mode covers less than the same number of routers
        split across both modes (the Section 4.2 conclusion)."""
        def run(ff, nff, seed=13):
            monitors = []
            for i in range(ff):
                monitors.append(MonitorSpec(f"ff{i}", MonitorMode.FLOODFILL, 8000.0))
            for i in range(nff):
                monitors.append(MonitorSpec(f"nff{i}", MonitorMode.NON_FLOODFILL, 8000.0))
            config = CampaignConfig(
                population=scaled_population_config(0.02, days=3, seed=seed),
                monitors=monitors,
                days=3,
                seed=seed,
            )
            return MeasurementCampaign(config).run().log.mean_daily_observed()

        mixed = run(2, 2)
        floodfill_only = run(4, 0)
        # Mixed-mode fleets observe at least as much as single-mode fleets of
        # the same size (diversity of viewpoints).
        assert mixed >= 0.95 * floodfill_only

    def test_client_only_campaign(self):
        """A campaign whose only observer is a client-mode router still
        produces a valid (small) observation log."""
        config = CampaignConfig(
            population=scaled_population_config(0.02, days=2, seed=17),
            monitors=[MonitorSpec("client", MonitorMode.CLIENT, 256.0)],
            days=2,
            seed=17,
        )
        result = MeasurementCampaign(config).run()
        assert 0 < result.log.mean_daily_observed() < result.mean_daily_online


class TestEarlyEvaluation:
    def test_blocking_on_first_day(self, small_campaign):
        """Evaluating the censor on day 0 (no history) still works: the
        blacklist windows simply degenerate to a single day."""
        assessment = blocking_assessment(
            small_campaign, router_count=5, window_days=30, evaluation_day=0,
            victim_history_days=1,
        )
        assert 0.0 <= assessment.rate <= 1.0
        assert assessment.victim_ip_count > 0

    def test_window_never_reaches_before_day_zero(self, small_campaign):
        early = censor_blacklist(small_campaign.monitors, 5, 0, 30)
        late = censor_blacklist(small_campaign.monitors, 5, 5, 30)
        assert early <= late


class TestSeedSensitivity:
    """The calibrated shapes hold across seeds, not just for seed 2018."""

    @pytest.mark.parametrize("seed", [1, 99])
    def test_headline_shares_stable_across_seeds(self, seed):
        result = run_main_campaign(days=6, scale=0.02, seed=seed)
        summary = summarize_population(result.log)
        estimate = estimate_population(result.log)
        # Unknown-IP share near one half.
        assert 0.35 < summary.unknown_ip_share < 0.65
        # Firewalled dominate hidden.
        assert summary.mean_daily_firewalled > summary.mean_daily_hidden
        # Floodfill share and extrapolation stay in the paper's ballpark.
        assert 0.05 < estimate.observed_floodfill_share < 0.15
        assert 0.7 < estimate.estimate_to_observed_ratio < 1.8

    def test_different_seeds_give_different_populations(self):
        a = run_main_campaign(days=2, scale=0.01, seed=1)
        b = run_main_campaign(days=2, scale=0.01, seed=2)
        assert set(a.log.peers) != set(b.log.peers)
