"""Tests for reseed-server blocking and manual reseeding (Section 6.1)."""

import pytest

from repro.core.reseed_blocking import (
    reseed_blocking_curve,
    simulate_reseed_blocking,
)
from repro.netdb.identity import RouterIdentity
from repro.netdb.routerinfo import RouterAddress, RouterInfo, TransportStyle, parse_capacity_string
from repro.sim.reseed import DEFAULT_RESEED_SERVERS


@pytest.fixture(scope="module")
def routerinfos():
    return [
        RouterInfo(
            identity=RouterIdentity.from_seed(f"peer-{i}"),
            addresses=(
                RouterAddress(TransportStyle.NTCP, f"10.1.{i // 250}.{i % 250 + 1}", 10000 + i),
            ),
            capacity=parse_capacity_string("LR"),
            published_at=0.0,
        )
        for i in range(200)
    ]


class TestSimulateReseedBlocking:
    def test_no_blocking_full_success(self, routerinfos):
        outcome = simulate_reseed_blocking(routerinfos, blocked_servers=0, clients=50)
        assert outcome.success_rate == 1.0
        assert outcome.manual_reseed_successes == 0

    def test_total_blocking_without_manual_reseed_fails(self, routerinfos):
        outcome = simulate_reseed_blocking(
            routerinfos,
            blocked_servers=len(DEFAULT_RESEED_SERVERS),
            clients=50,
            manual_reseed_share=0.0,
        )
        assert outcome.success_rate == 0.0

    def test_total_blocking_with_manual_reseed_partially_recovers(self, routerinfos):
        outcome = simulate_reseed_blocking(
            routerinfos,
            blocked_servers=len(DEFAULT_RESEED_SERVERS),
            clients=100,
            manual_reseed_share=0.4,
            seed=3,
        )
        assert 0.2 <= outcome.success_rate <= 0.6
        assert outcome.manual_reseed_successes == outcome.bootstrap_successes

    def test_partial_blocking_degrades_gradually(self, routerinfos):
        total = len(DEFAULT_RESEED_SERVERS)
        none_blocked = simulate_reseed_blocking(routerinfos, 0, clients=100, seed=5)
        half_blocked = simulate_reseed_blocking(routerinfos, total // 2, clients=100, seed=5)
        all_blocked = simulate_reseed_blocking(routerinfos, total, clients=100, seed=5)
        assert none_blocked.success_rate >= half_blocked.success_rate >= all_blocked.success_rate
        assert half_blocked.success_rate > 0.0

    def test_invalid_parameters(self, routerinfos):
        with pytest.raises(ValueError):
            simulate_reseed_blocking(routerinfos, blocked_servers=-1)
        with pytest.raises(ValueError):
            simulate_reseed_blocking(routerinfos, blocked_servers=999)
        with pytest.raises(ValueError):
            simulate_reseed_blocking(routerinfos, 0, manual_reseed_share=2.0)

    def test_as_dict(self, routerinfos):
        data = simulate_reseed_blocking(routerinfos, 1, clients=10).as_dict()
        assert set(data) >= {"blocked_servers", "success_rate", "manual_rescue_rate"}


class TestReseedBlockingCurve:
    def test_series_shape(self, routerinfos):
        figure = reseed_blocking_curve(
            routerinfos, clients=60, manual_reseed_share=0.3,
            server_names=DEFAULT_RESEED_SERVERS[:4], seed=1,
        )
        plain = figure.get("no manual reseed")
        manual = [s for name, s in figure.series.items() if name != "no manual reseed"][0]
        assert len(plain.points) == 5  # 0..4 blocked servers
        assert plain.y_at(0) == 100.0
        assert plain.y_at(4) == 0.0
        # Manual reseeding keeps some clients connected under full blocking.
        assert manual.y_at(4) > 0.0
        # Success rates never go above 100%.
        assert all(0.0 <= y <= 100.0 for y in plain.ys + manual.ys)
