"""Tests for the eepsite usability model under blocking (Figure 14)."""

import random

import pytest

from repro.core.usability import (
    EepsiteFetchModel,
    PageLoadConfig,
    client_netdb_from_dayview,
    usability_curve,
)
from repro.sim.population import I2PPopulation, PopulationConfig


@pytest.fixture(scope="module")
def client_netdb():
    population = I2PPopulation(
        PopulationConfig(target_daily_population=900, horizon_days=2, seed=41)
    )
    view = population.day_view(0)
    return client_netdb_from_dayview(population, view, size=300, rng=random.Random(0))


class TestClientNetdb:
    def test_size_and_uniqueness(self, client_netdb):
        assert len(client_netdb) == 300
        assert len({info.hash for info in client_netdb}) == 300

    def test_contains_blockable_ips_and_floodfills(self, client_netdb):
        ips = {ip for info in client_netdb for ip in info.ip_addresses}
        assert len(ips) > 50
        assert any(info.is_floodfill for info in client_netdb)

    def test_invalid_size(self, client_netdb):
        population = I2PPopulation(
            PopulationConfig(target_daily_population=300, horizon_days=1, seed=1)
        )
        view = population.day_view(0)
        with pytest.raises(ValueError):
            client_netdb_from_dayview(population, view, size=0)


class TestEepsiteFetchModel:
    def test_requires_netdb(self):
        with pytest.raises(ValueError):
            EepsiteFetchModel([])

    def test_unblocked_fetch_is_fast(self, client_netdb):
        model = EepsiteFetchModel(client_netdb, rng=random.Random(1))
        results = model.fetch_many(20)
        assert all(not r.timed_out for r in results)
        mean = sum(r.seconds for r in results) / len(results)
        # The paper reports ~3.4 s baseline page loads.
        assert 2.0 < mean < 8.0
        assert all(r.http_status == 200 for r in results)

    def test_fully_blocked_fetch_times_out(self, client_netdb):
        blocked = {ip for info in client_netdb for ip in info.ip_addresses}
        model = EepsiteFetchModel(client_netdb, rng=random.Random(2))
        result = model.fetch(blocked)
        assert result.timed_out
        assert result.http_status == 504
        assert result.seconds <= model.config.deadline

    def test_partial_blocking_slower_than_none(self, client_netdb):
        ips = sorted({ip for info in client_netdb for ip in info.ip_addresses})
        rng = random.Random(3)
        blocked = set(rng.sample(ips, int(0.7 * len(ips))))
        baseline_model = EepsiteFetchModel(client_netdb, rng=random.Random(4))
        blocked_model = EepsiteFetchModel(client_netdb, rng=random.Random(4))
        baseline = [r.seconds for r in baseline_model.fetch_many(15)]
        degraded = [r.seconds for r in blocked_model.fetch_many(15, blocked)]
        assert sum(degraded) / len(degraded) > sum(baseline) / len(baseline)

    def test_deadline_respected(self, client_netdb):
        config = PageLoadConfig(deadline=10.0)
        blocked = {ip for info in client_netdb for ip in info.ip_addresses}
        model = EepsiteFetchModel(client_netdb, config=config, rng=random.Random(5))
        result = model.fetch(blocked)
        assert result.seconds <= 10.0
        assert result.timed_out


class TestUsabilityCurve:
    def test_figure14_shape(self, client_netdb):
        figure = usability_curve(
            client_netdb,
            blocking_rates=(0.0, 0.65, 0.85, 0.95),
            fetches_per_rate=12,
            seed=6,
        )
        timeouts = figure.get("timed out requests (%)")
        latency = figure.get("page load time (s)")
        assert timeouts.y_at(0.0) == 0.0
        assert latency.y_at(0.0) < 10.0
        # Usability degrades monotonically in the broad sense: the highest
        # blocking rate is far worse than no blocking (Figure 14).
        assert timeouts.y_at(95.0) > 60.0
        assert latency.y_at(95.0) > 30.0
        assert timeouts.y_at(65.0) >= timeouts.y_at(0.0)
        assert latency.y_at(65.0) > latency.y_at(0.0)

    def test_invalid_blocking_rate(self, client_netdb):
        with pytest.raises(ValueError):
            usability_curve(client_netdb, blocking_rates=(1.5,), fetches_per_rate=1)

    def test_netdb_without_ips_rejected(self):
        from repro.netdb.identity import RouterIdentity
        from repro.netdb.routerinfo import RouterInfo, parse_capacity_string

        hidden_only = [
            RouterInfo(
                identity=RouterIdentity.from_seed("h"),
                addresses=(),
                capacity=parse_capacity_string("LU"),
                published_at=0.0,
            )
        ]
        with pytest.raises(ValueError):
            usability_curve(hidden_only, blocking_rates=(0.0,), fetches_per_rate=1)
