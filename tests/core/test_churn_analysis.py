"""Tests for the Section 5.2 churn analyses (Figures 7 and 8)."""

import pytest

from repro.core.churn_analysis import (
    ip_churn,
    ip_churn_figure,
    longevity,
    longevity_figure,
    longevity_summary,
)
from repro.core.monitor import ObservationLog


class TestLongevity:
    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            longevity(ObservationLog())

    def test_intermittent_at_least_continuous(self, small_campaign):
        result = longevity(small_campaign.log, thresholds=(3, 7))
        for threshold in (3, 7):
            assert result[threshold]["intermittent"] >= result[threshold]["continuous"]
            assert 0.0 <= result[threshold]["continuous"] <= 100.0

    def test_longer_thresholds_have_lower_percentages(self, small_campaign):
        result = longevity(small_campaign.log, thresholds=(2, 5, 9))
        assert result[2]["continuous"] >= result[5]["continuous"] >= result[9]["continuous"]
        assert result[2]["intermittent"] >= result[5]["intermittent"]

    def test_majority_stays_over_a_week_intermittently(self, small_campaign):
        """Section 5.2.1: most peers stay in the network for over a week."""
        result = longevity(small_campaign.log, thresholds=(7,))
        assert result[7]["intermittent"] > 50.0

    def test_summary_object(self, small_campaign):
        summary = longevity_summary(small_campaign.log)
        assert summary.total_peers == small_campaign.log.unique_peer_count
        assert summary.intermittent_over_7_days >= summary.continuous_over_7_days
        # A 12-day campaign cannot show peers observed for more than 30 days.
        assert summary.continuous_over_30_days == 0.0

    def test_figure7_series(self, small_campaign):
        figure = longevity_figure(small_campaign.log, step=2)
        continuous = figure.get("continuously")
        intermittent = figure.get("intermittently")
        assert len(continuous.points) == len(intermittent.points) > 0
        # Survival curves never increase.
        assert all(b <= a + 1e-9 for a, b in zip(continuous.ys, continuous.ys[1:]))
        for x in continuous.xs:
            assert intermittent.y_at(x) >= continuous.y_at(x)


class TestIpChurn:
    def test_counts_consistent(self, small_campaign):
        summary = ip_churn(small_campaign.log)
        assert summary.known_ip_peers == summary.single_ip_peers + summary.multi_ip_peers
        assert 0.0 <= summary.multi_ip_share <= 1.0
        assert summary.single_ip_share + summary.multi_ip_share == pytest.approx(1.0)
        assert summary.peers_over_100_ips <= summary.multi_ip_peers

    def test_some_peers_rotate_addresses(self, small_campaign):
        """Section 5.2.2: a substantial share of peers has more than one IP."""
        summary = ip_churn(small_campaign.log)
        assert summary.multi_ip_share > 0.10

    def test_figure8_counts_sum_to_known_peers(self, small_campaign):
        figure = ip_churn_figure(small_campaign.log, max_addresses=8)
        counts = figure.get("observed peers")
        summary = ip_churn(small_campaign.log)
        assert sum(counts.ys) == summary.known_ip_peers
        percentages = figure.get("percentage")
        assert sum(percentages.ys) == pytest.approx(100.0, abs=0.5)

    def test_figure8_single_ip_dominates(self, small_campaign):
        figure = ip_churn_figure(small_campaign.log, max_addresses=8)
        counts = figure.get("observed peers")
        assert counts.y_at(1) == max(counts.ys)

    def test_empty_log(self):
        summary = ip_churn(ObservationLog())
        assert summary.known_ip_peers == 0
        assert summary.single_ip_share == 0.0
        assert summary.multi_ip_share == 0.0
        assert summary.over_100_share == 0.0
