"""Tests for report rendering."""

import pytest

from repro.core.blocking import blocking_curve
from repro.core.reporting import render_campaign_summary, render_figure, render_table1


class TestRenderFigure:
    def test_blocking_figure_renders(self, small_campaign):
        figure = blocking_curve(small_campaign, router_counts=[1, 5], windows=(1,))
        text = render_figure(figure)
        assert "figure_13" in text
        assert "1 day" in text


class TestRenderTable1:
    def test_contains_all_tiers_and_groups(self, small_campaign):
        text = render_table1(small_campaign.log)
        for tier in "KLMNOPX":
            assert f"\n{tier} " in "\n" + text
        for column in ("Floodfill", "Reachable", "Unreachable", "Total"):
            assert column in text


class TestRenderCampaignSummary:
    def test_sections_present(self, small_campaign):
        text = render_campaign_summary(small_campaign)
        for heading in (
            "Population (Section 5.1)",
            "Longevity (Section 5.2.1)",
            "IP churn (Section 5.2.2)",
            "Floodfill extrapolation (Section 5.3.1)",
            "Geography (Section 5.3.2)",
            "Campaign coverage",
        ):
            assert heading in text

    def test_summary_mentions_monitor_count(self, small_campaign):
        text = render_campaign_summary(small_campaign)
        assert "monitors" in text
        assert "20" in text
