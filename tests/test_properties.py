"""Property-based tests (hypothesis) for core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import cumulative_share, share, summarize, survival_points
from repro.core.blocking import blocking_rate
from repro.netdb.identity import RouterIdentity, from_i2p_base64, sha256, to_i2p_base64
from repro.netdb.kademlia import closest_nodes, xor_distance
from repro.netdb.routerinfo import BandwidthTier, parse_capacity_string
from repro.netdb.routing_key import SECONDS_PER_DAY, routing_key
from repro.netdb.store import NetDbStore
from repro.sim.bandwidth import BandwidthModel
from repro.sim.churn import ChurnModel
from repro.transport.ports import is_possible_i2p_port, random_i2p_port

# Shared strategies -----------------------------------------------------------
keys32 = st.binary(min_size=32, max_size=32)
small_floats = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestIdentityProperties:
    @given(st.binary(min_size=1, max_size=128))
    def test_base64_round_trip(self, data):
        assert from_i2p_base64(to_i2p_base64(data)) == data

    @given(st.binary(min_size=1, max_size=128))
    def test_i2p_alphabet_never_contains_plus_or_slash(self, data):
        encoded = to_i2p_base64(data)
        assert "+" not in encoded and "/" not in encoded

    @given(st.text(min_size=1, max_size=50))
    def test_identity_hash_is_stable_and_32_bytes(self, seed):
        a = RouterIdentity.from_seed(seed)
        b = RouterIdentity.from_seed(seed)
        assert a.hash == b.hash
        assert len(a.hash) == 32


class TestXorMetricProperties:
    @given(keys32, keys32)
    def test_symmetry(self, a, b):
        assert xor_distance(a, b) == xor_distance(b, a)

    @given(keys32)
    def test_identity_of_indiscernibles(self, a):
        assert xor_distance(a, a) == 0

    @given(keys32, keys32, keys32)
    def test_triangle_inequality(self, a, b, c):
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)

    @given(keys32, st.lists(keys32, min_size=1, max_size=30), st.integers(1, 10))
    def test_closest_nodes_sorted_by_distance(self, target, candidates, count):
        result = closest_nodes(target, candidates, count)
        distances = [xor_distance(target, key) for key in result]
        assert distances == sorted(distances)
        assert len(result) == min(count, len(set(candidates)) if False else len(candidates))

    @given(keys32, st.lists(keys32, min_size=2, max_size=30))
    def test_closest_node_is_global_minimum(self, target, candidates):
        best = closest_nodes(target, candidates, 1)[0]
        assert xor_distance(target, best) == min(
            xor_distance(target, key) for key in candidates
        )


class TestRoutingKeyProperties:
    @given(keys32, st.floats(min_value=0, max_value=100 * SECONDS_PER_DAY, allow_nan=False))
    def test_routing_key_is_32_bytes(self, key, time):
        assert len(routing_key(key, time)) == 32

    @given(keys32, st.integers(min_value=0, max_value=365))
    def test_same_day_same_routing_key(self, key, day):
        start = day * SECONDS_PER_DAY
        assert routing_key(key, start + 1) == routing_key(key, start + SECONDS_PER_DAY - 1)


class TestCapacityStringProperties:
    @given(
        st.lists(st.sampled_from(list("KLMNOPX")), min_size=1, max_size=3, unique=True),
        st.booleans(),
        st.sampled_from(["R", "U", ""]),
    )
    def test_parse_round_trip_preserves_flags(self, tiers, floodfill, reach):
        caps = "".join(tiers) + ("f" if floodfill else "") + reach
        parsed = parse_capacity_string(caps)
        assert parsed.floodfill == floodfill
        assert {t.value for t in parsed.tiers} == set(tiers)
        assert parsed.reachable == (reach == "R")

    @given(st.floats(min_value=0, max_value=100_000, allow_nan=False))
    def test_every_bandwidth_maps_to_exactly_one_tier(self, kbps):
        tier = BandwidthTier.for_bandwidth(kbps)
        assert tier.min_kbps <= kbps
        assert kbps < tier.max_kbps or tier is BandwidthTier.X


class TestStoreProperties:
    @given(st.lists(st.tuples(st.text(min_size=1, max_size=8), small_floats), max_size=40))
    def test_store_keeps_newest_per_peer(self, entries):
        from repro.netdb.routerinfo import RouterInfo

        store = NetDbStore()
        newest = {}
        for seed, published_at in entries:
            info = RouterInfo(
                identity=RouterIdentity.from_seed(seed),
                addresses=(),
                capacity=parse_capacity_string("LU"),
                published_at=published_at,
            )
            store.store_routerinfo(info)
            key = info.hash
            newest[key] = max(newest.get(key, -1.0), published_at)
        assert len(store) == len(newest)
        for key, published_at in newest.items():
            assert store.get_routerinfo(key).published_at == published_at


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    def test_summary_bounds(self, values):
        stats = summarize(values)
        assert stats.minimum <= stats.median <= stats.maximum
        # The mean may drift from the min/max by a rounding error (1 ulp).
        span = max(abs(stats.minimum), abs(stats.maximum), 1e-300)
        tolerance = span * 1e-12
        assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance
        assert stats.count == len(values)

    @given(st.dictionaries(st.text(min_size=1, max_size=5), st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=20))
    def test_share_sums_to_one_or_zero(self, counts):
        total = sum(share(counts).values())
        assert total == 0.0 or abs(total - 1.0) < 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
    def test_cumulative_share_monotone_and_bounded(self, counts):
        cumulative = cumulative_share(counts)
        assert all(b >= a - 1e-12 for a, b in zip(cumulative, cumulative[1:]))
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in cumulative)

    @given(
        st.lists(st.floats(min_value=0, max_value=365, allow_nan=False), min_size=1, max_size=100),
        st.lists(st.floats(min_value=0, max_value=365, allow_nan=False), min_size=1, max_size=20),
    )
    def test_survival_curve_monotone_nonincreasing(self, values, thresholds):
        thresholds = sorted(thresholds)
        points = survival_points(values, thresholds)
        fractions = [fraction for _, fraction in points]
        assert all(b <= a + 1e-12 for a, b in zip(fractions, fractions[1:]))


class TestBlockingRateProperties:
    @given(st.sets(st.text(min_size=1, max_size=6)), st.sets(st.text(min_size=1, max_size=6)))
    def test_rate_bounded(self, censor, victim):
        rate = blocking_rate(censor, victim)
        assert 0.0 <= rate <= 1.0

    @given(
        st.sets(st.text(min_size=1, max_size=6)),
        st.sets(st.text(min_size=1, max_size=6)),
        st.sets(st.text(min_size=1, max_size=6)),
    )
    def test_rate_monotone_in_censor_set(self, censor, extra, victim):
        assert blocking_rate(censor | extra, victim) >= blocking_rate(censor, victim)

    @given(st.sets(st.text(min_size=1, max_size=6), min_size=1))
    def test_full_knowledge_full_blocking(self, victim):
        assert blocking_rate(set(victim), victim) == 1.0


class TestModelProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_bandwidth_sample_internally_consistent(self, seed):
        model = BandwidthModel()
        assignment = model.sample(random.Random(seed))
        assert assignment.primary_tier in assignment.advertised_tiers
        assert assignment.shared_kbps >= 0
        assert BandwidthTier.for_bandwidth(assignment.shared_kbps) is assignment.primary_tier

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_churn_schedule_valid(self, seed, join_day):
        model = ChurnModel(rng=random.Random(seed))
        schedule = model.sample_schedule(join_day)
        assert schedule.join_day == join_day
        assert schedule.leave_day > schedule.join_day
        assert 0.0 <= schedule.online_probability <= 1.0

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50)
    def test_random_port_always_valid(self, seed):
        port = random_i2p_port(random.Random(seed))
        assert is_possible_i2p_port(port)
