"""Tests for NTCP/NTCP2 flow shapes and the DPI fingerprint classifier."""

import random

import pytest

from repro.netdb.identity import sha256
from repro.transport.ntcp import (
    NTCP_HANDSHAKE_SIZES,
    HandshakeFingerprinter,
    NTCP2Session,
    NTCPSession,
    synthetic_background_flow,
)


class TestNTCPSession:
    def test_handshake_sizes_match_paper(self):
        session = NTCPSession(sha256(b"a"), sha256(b"b"))
        assert session.handshake() == (288, 304, 448, 48)
        assert NTCP_HANDSHAKE_SIZES == (288, 304, 448, 48)

    def test_double_handshake_rejected(self):
        session = NTCPSession(sha256(b"a"), sha256(b"b"))
        session.handshake()
        with pytest.raises(RuntimeError):
            session.handshake()

    def test_send_requires_handshake(self):
        session = NTCPSession(sha256(b"a"), sha256(b"b"))
        with pytest.raises(RuntimeError):
            session.send(100)

    def test_send_adds_framing(self):
        session = NTCPSession(sha256(b"a"), sha256(b"b"))
        session.handshake()
        assert session.send(100) == 116

    def test_negative_payload_rejected(self):
        session = NTCPSession(sha256(b"a"), sha256(b"b"))
        session.handshake()
        with pytest.raises(ValueError):
            session.send(-1)

    def test_flow_record_protocol_label(self):
        session = NTCPSession(sha256(b"a"), sha256(b"b"))
        session.handshake()
        session.send(50)
        record = session.flow_record()
        assert record.protocol == "ntcp"
        assert record.first_four == NTCP_HANDSHAKE_SIZES


class TestNTCP2Session:
    def test_handshake_is_randomised(self):
        sizes = set()
        for seed in range(20):
            session = NTCP2Session(sha256(b"a"), sha256(b"b"), rng=random.Random(seed))
            sizes.add(session.handshake())
        assert len(sizes) > 1

    def test_handshake_never_matches_ntcp_signature(self):
        for seed in range(50):
            session = NTCP2Session(sha256(b"a"), sha256(b"b"), rng=random.Random(seed))
            assert session.handshake() != NTCP_HANDSHAKE_SIZES[:3]

    def test_send_requires_handshake(self):
        session = NTCP2Session(sha256(b"a"), sha256(b"b"))
        with pytest.raises(RuntimeError):
            session.send(10)


class TestHandshakeFingerprinter:
    def _ntcp_flow(self):
        session = NTCPSession(sha256(b"a"), sha256(b"b"))
        session.handshake()
        session.send(200)
        return session.flow_record()

    def _ntcp2_flow(self, seed=0):
        session = NTCP2Session(sha256(b"a"), sha256(b"b"), rng=random.Random(seed))
        session.handshake()
        session.send(200)
        return session.flow_record()

    def test_detects_legacy_ntcp(self):
        assert HandshakeFingerprinter().matches(self._ntcp_flow())

    def test_misses_ntcp2(self):
        fingerprinter = HandshakeFingerprinter()
        detected = sum(fingerprinter.matches(self._ntcp2_flow(seed)) for seed in range(30))
        assert detected == 0

    def test_misses_background_traffic(self):
        rng = random.Random(3)
        fingerprinter = HandshakeFingerprinter()
        flows = [synthetic_background_flow(rng, "https") for _ in range(50)]
        assert sum(fingerprinter.matches(f) for f in flows) == 0

    def test_evaluation_metrics(self):
        rng = random.Random(5)
        flows = [self._ntcp_flow() for _ in range(20)]
        flows += [self._ntcp2_flow(seed) for seed in range(20)]
        flows += [synthetic_background_flow(rng, "https") for _ in range(20)]
        metrics = HandshakeFingerprinter().evaluate(flows)
        assert metrics["true_positives"] == 20
        assert metrics["false_positives"] == 0
        assert metrics["recall"] == 1.0
        assert metrics["precision"] == 1.0
        assert metrics["true_negatives"] == 40

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            HandshakeFingerprinter(tolerance=-1)

    def test_short_flow_not_matched(self):
        from repro.transport.ntcp import FlowRecord

        assert not HandshakeFingerprinter().matches(FlowRecord((288, 304), "ntcp"))

    def test_background_flow_requires_positive_length(self):
        with pytest.raises(ValueError):
            synthetic_background_flow(random.Random(0), "https", length=0)
