"""Tests for the port model (Section 2.2.2: arbitrary ports in 9000–31000)."""

import random

import pytest

from repro.transport.ports import (
    I2P_PORT_RANGE,
    NTP_PORT,
    WELL_KNOWN_PORTS,
    PortRegistry,
    is_possible_i2p_port,
    random_i2p_port,
)


class TestPortRange:
    def test_range_constants(self):
        assert I2P_PORT_RANGE == (9000, 31000)
        assert NTP_PORT == 123

    def test_random_port_in_range(self):
        rng = random.Random(0)
        for _ in range(200):
            port = random_i2p_port(rng)
            assert is_possible_i2p_port(port)
            assert port not in WELL_KNOWN_PORTS

    def test_is_possible_boundaries(self):
        assert is_possible_i2p_port(9000)
        assert is_possible_i2p_port(31000)
        assert not is_possible_i2p_port(8999)
        assert not is_possible_i2p_port(31001)
        assert not is_possible_i2p_port(443)


class TestPortRegistry:
    def test_bind_returns_unique_ports_per_ip(self):
        registry = PortRegistry()
        rng = random.Random(1)
        ports = {registry.bind("1.1.1.1", bytes([i]) * 32, rng=rng) for i in range(50)}
        assert len(ports) == 50

    def test_same_port_allowed_on_different_ips(self):
        registry = PortRegistry()
        port_a = registry.bind("1.1.1.1", b"\x01" * 32, preferred_port=10000)
        port_b = registry.bind("2.2.2.2", b"\x02" * 32, preferred_port=10000)
        assert port_a == port_b == 10000

    def test_preferred_port_conflict_falls_back(self):
        registry = PortRegistry()
        rng = random.Random(2)
        registry.bind("1.1.1.1", b"\x01" * 32, preferred_port=10000)
        other = registry.bind("1.1.1.1", b"\x02" * 32, rng=rng, preferred_port=10000)
        assert other != 10000

    def test_preferred_port_outside_range_rejected(self):
        registry = PortRegistry()
        with pytest.raises(ValueError):
            registry.bind("1.1.1.1", b"\x01" * 32, preferred_port=80)

    def test_owner_and_release(self):
        registry = PortRegistry()
        registry.bind("1.1.1.1", b"\x09" * 32, preferred_port=9100)
        assert registry.owner("1.1.1.1", 9100) == b"\x09" * 32
        assert registry.release("1.1.1.1", 9100)
        assert registry.owner("1.1.1.1", 9100) is None
        assert not registry.release("1.1.1.1", 9100)

    def test_ports_on_ip(self):
        registry = PortRegistry()
        registry.bind("1.1.1.1", b"\x01" * 32, preferred_port=9100)
        registry.bind("1.1.1.1", b"\x02" * 32, preferred_port=9200)
        registry.bind("2.2.2.2", b"\x03" * 32, preferred_port=9300)
        assert registry.ports_on("1.1.1.1") == [9100, 9200]
        assert len(registry) == 3

    def test_port_histogram(self):
        registry = PortRegistry()
        registry.bind("1.1.1.1", b"\x01" * 32, preferred_port=9100)
        registry.bind("1.1.1.1", b"\x02" * 32, preferred_port=9900)
        registry.bind("1.1.1.1", b"\x03" * 32, preferred_port=15500)
        histogram = registry.port_histogram(bucket_size=1000)
        assert histogram[9000] == 2
        assert histogram[15000] == 1

    def test_port_histogram_invalid_bucket(self):
        with pytest.raises(ValueError):
            PortRegistry().port_histogram(bucket_size=0)
