"""Tests for SSU introducers, relaying, and peer testing."""

import random

import pytest

from repro.netdb.identity import RouterIdentity
from repro.transport.ssu import (
    INTRODUCTION_TAG_LIFETIME,
    MAX_INTRODUCERS,
    ReachabilityStatus,
    RelayRequest,
    SSUEndpoint,
    run_peer_test,
)


def make_endpoint(seed: str, ip="1.2.3.4", port=10001, firewalled=False):
    return SSUEndpoint(
        router_hash=RouterIdentity.from_seed(seed).hash,
        ip=ip,
        port=port,
        firewalled=firewalled,
        rng=random.Random(hash(seed) & 0xFFFF),
    )


class TestIntroductionTags:
    def test_issue_tag_for_firewalled_peer(self):
        introducer = make_endpoint("introducer")
        bob = make_endpoint("bob", ip="5.6.7.8", firewalled=True)
        tag = introducer.issue_tag(bob, now=0.0)
        assert tag is not None
        assert tag.introducer_ip == "1.2.3.4"
        assert tag.target_hash == bob.router_hash
        assert bob.has_introducers()

    def test_firewalled_endpoint_cannot_introduce(self):
        firewalled = make_endpoint("fw", firewalled=True)
        bob = make_endpoint("bob", firewalled=True)
        assert firewalled.issue_tag(bob, now=0.0) is None

    def test_addressless_endpoint_cannot_introduce(self):
        nohost = SSUEndpoint(RouterIdentity.from_seed("x").hash, ip=None, port=None)
        bob = make_endpoint("bob", firewalled=True)
        assert nohost.issue_tag(bob, now=0.0) is None

    def test_tag_expiry(self):
        introducer = make_endpoint("introducer")
        bob = make_endpoint("bob", firewalled=True)
        introducer.issue_tag(bob, now=0.0)
        removed = introducer.expire_tags(now=INTRODUCTION_TAG_LIFETIME + 1)
        assert removed >= 1
        bob.expire_tags(now=INTRODUCTION_TAG_LIFETIME + 1)
        assert not bob.has_introducers()

    def test_introducer_tags_bounded(self):
        bob = make_endpoint("bob", firewalled=True)
        for i in range(MAX_INTRODUCERS + 3):
            make_endpoint(f"intro-{i}").issue_tag(bob, now=0.0)
        assert len(bob.introducer_tags) == MAX_INTRODUCERS

    def test_clear_introducers(self):
        bob = make_endpoint("bob", firewalled=True)
        make_endpoint("intro").issue_tag(bob, now=0.0)
        bob.clear_introducers()
        assert not bob.has_introducers()


class TestRelaying:
    def test_relay_round_trip(self):
        introducer = make_endpoint("introducer")
        bob = make_endpoint("bob", ip="9.9.9.9", port=20002, firewalled=True)
        alice = make_endpoint("alice", ip="8.8.8.8", port=30003)
        tag = introducer.issue_tag(bob, now=0.0)
        request = RelayRequest(
            from_hash=alice.router_hash, from_ip="8.8.8.8", from_port=30003, tag=tag.tag
        )
        outcome = introducer.handle_relay_request(request, bob)
        assert outcome is not None
        response, punch = outcome
        assert response.target_ip == "9.9.9.9"
        assert punch.to_ip == "8.8.8.8"
        assert punch.from_hash == bob.router_hash

    def test_unknown_tag_rejected(self):
        introducer = make_endpoint("introducer")
        bob = make_endpoint("bob", firewalled=True)
        request = RelayRequest(
            from_hash=make_endpoint("alice").router_hash,
            from_ip="8.8.8.8",
            from_port=30003,
            tag=12345,
        )
        assert introducer.handle_relay_request(request, bob) is None

    def test_tag_target_mismatch_rejected(self):
        introducer = make_endpoint("introducer")
        bob = make_endpoint("bob", firewalled=True)
        eve = make_endpoint("eve", firewalled=True)
        tag = introducer.issue_tag(bob, now=0.0)
        request = RelayRequest(
            from_hash=make_endpoint("alice").router_hash,
            from_ip="8.8.8.8",
            from_port=30003,
            tag=tag.tag,
        )
        assert introducer.handle_relay_request(request, eve) is None


class TestPeerTest:
    def test_reachable_peer(self):
        endpoint = make_endpoint("me")
        helpers = [make_endpoint(f"helper-{i}") for i in range(2)]
        result = run_peer_test(endpoint, helpers, inbound_blocked=False)
        assert result.status is ReachabilityStatus.OK
        assert result.observed_ip == "1.2.3.4"

    def test_firewalled_peer(self):
        endpoint = make_endpoint("me")
        helpers = [make_endpoint(f"helper-{i}") for i in range(2)]
        result = run_peer_test(endpoint, helpers, inbound_blocked=True)
        assert result.status is ReachabilityStatus.FIREWALLED

    def test_insufficient_helpers(self):
        endpoint = make_endpoint("me")
        result = run_peer_test(endpoint, [make_endpoint("only")], inbound_blocked=False)
        assert result.status is ReachabilityStatus.UNKNOWN

    def test_firewalled_helpers_not_counted(self):
        endpoint = make_endpoint("me")
        helpers = [make_endpoint(f"h{i}", firewalled=True) for i in range(3)]
        result = run_peer_test(endpoint, helpers, inbound_blocked=False)
        assert result.status is ReachabilityStatus.UNKNOWN

    def test_addressless_peer_is_firewalled(self):
        endpoint = SSUEndpoint(RouterIdentity.from_seed("x").hash, ip=None, port=None)
        helpers = [make_endpoint(f"helper-{i}") for i in range(2)]
        result = run_peer_test(endpoint, helpers, inbound_blocked=False)
        assert result.status is ReachabilityStatus.FIREWALLED

    def test_invalid_router_hash(self):
        with pytest.raises(ValueError):
            SSUEndpoint(b"short", ip="1.1.1.1", port=1234)
