#!/usr/bin/env python3
"""Message-level I2P network walkthrough.

Builds a small I2P network at full protocol fidelity and demonstrates the
mechanics the measurement study relies on (Sections 2.1 and 4.2):

* reseed bootstrap (≈75 RouterInfos per reseed server);
* RouterInfo publication to the closest floodfills and flooding;
* DatabaseLookup exploration;
* iterative RouterInfo lookups through the floodfill DHT;
* tunnel building and the peer knowledge it leaks to participants;
* the fixed-length NTCP handshake that makes legacy I2P flows
  fingerprintable, versus NTCP2.

Run::

    python examples/message_level_network.py [--routers 40]
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.netdb.routerinfo import BandwidthTier
from repro.sim import I2PNetwork, create_reseed_file, bootstrap
from repro.transport import HandshakeFingerprinter, NTCP2Session, NTCPSession


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--routers", type=int, default=40)
    parser.add_argument("--floodfills", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    network = I2PNetwork(seed=args.seed)

    print(f"== Building a network of {args.routers} routers "
          f"({args.floodfills} floodfills) ==")
    # Floodfills join one at a time so each bootstraps off its
    # predecessors; the bulk population then joins in one batch (its
    # members bootstrap against the reseed view that already includes
    # every floodfill).
    for _ in range(args.floodfills):
        network.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
    network.batch_add_routers(
        args.routers - args.floodfills, bandwidth_tier=BandwidthTier.L
    )
    network.run_convergence_rounds(rounds=3)
    sizes = sorted(len(r.store) for r in network.routers.values())
    print(f"netDb sizes after convergence: min={sizes[0]} median={sizes[len(sizes)//2]} "
          f"max={sizes[-1]} (of {args.routers} routers)")
    print(f"protocol messages delivered so far: {network.messages_delivered}")

    print("\n== A new router bootstraps from the reseed servers ==")
    newcomer = network.add_router()
    print(f"newcomer learned {len(newcomer.store)} RouterInfos from reseeding "
          f"(reseed servers hand out ~75 each)")

    print("\n== Iterative RouterInfo lookup through the floodfill DHT ==")
    target = random.Random(args.seed).choice(
        [r for r in network.routers.values() if r.hash != newcomer.hash]
    )
    found = network.lookup_routerinfo(newcomer.hash, target.hash)
    print(f"lookup for {target.identity.short_hash}: "
          f"{'found ' + found.summary() if found else 'not found'}")

    print("\n== Tunnel building leaks peer knowledge to participants ==")
    built = network.build_client_tunnels(newcomer.hash, pairs=3, length=2)
    participants = sum(1 for r in network.routers.values() if r.participating_tunnels)
    print(f"built {built} tunnels; {participants} routers now participate in tunnels "
          f"and learned about adjacent peers")

    print("\n== Reseed blocking and manual reseeding (Section 6.1) ==")
    for server in network.reseed_servers:
        server.blocked = True
    blocked_client_result = bootstrap("203.0.113.50", network.reseed_servers)
    print(f"bootstrap with every reseed server blocked: "
          f"{'succeeded' if blocked_client_result.succeeded else 'FAILED'}")
    reseed_file = create_reseed_file(newcomer.hash, newcomer.store.routerinfos())
    rescued = bootstrap(
        "203.0.113.50", network.reseed_servers, manual_reseed=reseed_file
    )
    print(f"bootstrap with a manual i2pseeds.su3 file ({len(reseed_file)} RouterInfos): "
          f"{'succeeded' if rescued.succeeded else 'failed'}")

    print("\n== NTCP fingerprinting (Section 2.2.2) ==")
    legacy = NTCPSession(newcomer.hash, target.hash)
    print(f"legacy NTCP handshake sizes: {legacy.handshake()}")
    modern = NTCP2Session(newcomer.hash, target.hash, rng=random.Random(args.seed))
    print(f"NTCP2 handshake sizes (randomised padding): {modern.handshake()}")
    fingerprinter = HandshakeFingerprinter()
    print(f"DPI classifier flags legacy flow: {fingerprinter.matches(legacy.flow_record())}")
    print(f"DPI classifier flags NTCP2 flow:  {fingerprinter.matches(modern.flow_record())}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
