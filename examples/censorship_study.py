#!/usr/bin/env python3
"""Censorship-resistance study: blocking, usability, reseeds, and bridges.

Walks through the paper's Section 6 and Section 7.1 end to end on the
simulated network:

1. run the 20-router measurement campaign (the censor's infrastructure and
   the victim client);
2. compute the address-based blocking rates for 1–20 censor routers under
   1/5/10/20/30-day blacklist windows (Figure 13);
3. simulate eepsite page loads under increasing blocking rates (Figure 14);
4. evaluate reseed-server blocking and manual reseeding (Section 6.1);
5. quantify the bridge pool of newly joined + firewalled peers (Section 7.1).

Run::

    python examples/censorship_study.py [--days 20] [--scale 0.05]
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core import (
    blocking_assessment,
    blocking_curve,
    bridge_pool_summary,
    bridge_survival_curve,
    client_netdb_from_dayview,
    render_figure,
    reseed_blocking_curve,
    run_main_campaign,
    usability_curve,
)
from repro.sim import I2PPopulation, PopulationConfig


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=20)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--fetches", type=int, default=10, help="page loads per blocking rate")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])

    # ------------------------------------------------------------------ #
    # 1. The measurement campaign doubles as the censor's infrastructure.
    # ------------------------------------------------------------------ #
    print("== Running measurement campaign (censor + victim) ==")
    result = run_main_campaign(days=args.days, scale=args.scale, seed=args.seed)

    # ------------------------------------------------------------------ #
    # 2. Figure 13: blocking rate vs number of censor routers.
    # ------------------------------------------------------------------ #
    print("\n== Figure 13: address-based blocking ==")
    figure13 = blocking_curve(result, windows=(1, 5, 10, 20, 30))
    print(render_figure(figure13, float_format=".1f"))
    headline = blocking_assessment(result, router_count=10, window_days=5)
    print(
        f"\nHeadline: 10 censor routers with a 5-day blacklist block "
        f"{headline.rate:.1%} of the victim's {headline.victim_ip_count} known peer IPs."
    )

    # ------------------------------------------------------------------ #
    # 3. Figure 14: usability under blocking.
    # ------------------------------------------------------------------ #
    print("\n== Figure 14: eepsite usability under blocking ==")
    population = I2PPopulation(
        PopulationConfig(
            target_daily_population=max(500, int(30_500 * args.scale * 0.5)),
            horizon_days=2,
            seed=args.seed + 1,
        )
    )
    view = population.day_view(0)
    netdb = client_netdb_from_dayview(
        population, view, size=min(600, view.online_count // 2), rng=random.Random(args.seed)
    )
    figure14 = usability_curve(
        netdb,
        blocking_rates=(0.0, 0.65, 0.71, 0.77, 0.83, 0.89, 0.93, 0.97),
        fetches_per_rate=args.fetches,
        seed=args.seed,
    )
    print(render_figure(figure14, float_format=".1f"))

    # ------------------------------------------------------------------ #
    # 4. Section 6.1: reseed-server blocking and manual reseeding.
    # ------------------------------------------------------------------ #
    print("\n== Section 6.1: reseed-server blocking ==")
    reseed_figure = reseed_blocking_curve(
        netdb, clients=150, manual_reseed_share=0.3, seed=args.seed
    )
    print(render_figure(reseed_figure, float_format=".1f"))

    # ------------------------------------------------------------------ #
    # 5. Section 7.1: bridges from new + firewalled peers.
    # ------------------------------------------------------------------ #
    print("\n== Section 7.1: bridge candidates ==")
    pool = bridge_pool_summary(result, censor_routers=10, blacklist_window_days=5)
    print(
        f"online known-IP peers: {pool.total_online_known_ip}, "
        f"unblocked: {pool.unblocked_known_ip} ({pool.unblocked_share:.1%}), "
        f"of which newly joined: {pool.unblocked_newly_joined}"
    )
    print(
        f"firewalled peers (unblockable by address): {pool.firewalled_pool} "
        "— candidates for sustainable bridges"
    )
    survival = bridge_survival_curve(result, censor_routers=10, horizon_days=6)
    print(render_figure(survival, float_format=".1f"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
