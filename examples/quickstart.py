#!/usr/bin/env python3
"""Quickstart: run a small I2P measurement campaign and print the findings.

This reproduces, at a reduced scale, the paper's main measurement loop
(Section 5): operate 20 monitoring routers (10 floodfill + 10
non-floodfill) against the synthetic I2P network for a number of days,
aggregate the observed RouterInfos, and summarise population, churn,
capacity, and geography.

Run::

    python examples/quickstart.py [--days 20] [--scale 0.05]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import (
    blocking_curve,
    render_campaign_summary,
    render_figure,
    run_main_campaign,
)


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--days", type=int, default=20, help="campaign length in days (paper: 90)"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="population scale relative to the paper's ~30.5K daily peers",
    )
    parser.add_argument("--seed", type=int, default=2018, help="random seed")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    print(
        f"Running a {args.days}-day campaign at scale {args.scale:g} "
        f"(≈{int(30500 * args.scale)} daily peers)..."
    )
    started = time.time()
    result = run_main_campaign(days=args.days, scale=args.scale, seed=args.seed)
    elapsed = time.time() - started
    print(f"Campaign finished in {elapsed:.1f}s.\n")

    print(render_campaign_summary(result))
    print()

    figure = blocking_curve(result, router_counts=[1, 2, 4, 6, 10, 20], windows=(1, 5))
    print(render_figure(figure, float_format=".1f"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
