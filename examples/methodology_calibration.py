#!/usr/bin/env python3
"""Methodology calibration: how many routers, in which mode, at what
bandwidth?

Reproduces the paper's Section 4 experiments that decide the measurement
setup used for the main campaign:

* Figure 2 — a single high-end router run in floodfill and then
  non-floodfill mode;
* Figure 3 — seven floodfill + seven non-floodfill routers across a shared
  bandwidth sweep from 128 KB/s to 5 MB/s;
* Figure 4 — the cumulative number of peers observed when operating 1–40
  routers, which motivates the choice of 20 routers for the main campaign.

Run::

    python examples/methodology_calibration.py [--scale 0.05]
"""

from __future__ import annotations

import argparse
import sys

from repro.core import (
    bandwidth_sweep,
    render_figure,
    router_count_sweep,
    single_router_experiment,
)


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--max-routers", type=int, default=40)
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])

    print("== Figure 2: single high-end router, floodfill vs non-floodfill ==")
    figure2 = single_router_experiment(days_per_mode=5, scale=args.scale, seed=args.seed)
    print(render_figure(figure2, float_format=".0f"))

    print("\n== Figure 3: shared-bandwidth sweep (7 + 7 routers) ==")
    figure3 = bandwidth_sweep(days=3, scale=args.scale, seed=args.seed)
    print(render_figure(figure3, float_format=".0f"))
    both = figure3.get("both")
    print(
        "\nObservation: the combined floodfill + non-floodfill view stays "
        f"within [{min(both.ys):.0f}, {max(both.ys):.0f}] peers across the sweep, "
        "so running both modes matters more than raw bandwidth."
    )

    print("\n== Figure 4: cumulative peers vs number of routers ==")
    figure4, result = router_count_sweep(
        max_routers=args.max_routers, days=5, scale=args.scale, seed=args.seed
    )
    print(render_figure(figure4, float_format=".0f"))
    series = figure4.get("cumulative observed")
    total = series.ys[-1]
    twenty = series.y_at(min(20, args.max_routers))
    print(
        f"\n20 routers observe {twenty:.0f} peers = {twenty / total:.1%} of the "
        f"{total:.0f} peers observed by {args.max_routers} routers "
        "(the paper reports 95.5%), so 20 routers are sufficient."
    )
    print(
        f"Ground-truth daily population in this run: {result.mean_daily_online:.0f} peers."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
