"""Figure 5 — number of unique peers and IP addresses per day, Section 5.1.

Paper result: ~30.5K daily peers, stable over the campaign; the number of
unique IP addresses is *lower* than the number of peers because ~15K peers
per day publish no valid address; IPv6 addresses are a small minority.
"""

import numpy as np

from repro.core import daily_population_figure, summarize_population


def test_figure_05_population(benchmark, main_campaign, scale):
    figure = benchmark.pedantic(
        lambda: daily_population_figure(main_campaign.log), rounds=1, iterations=1
    )
    summary = summarize_population(main_campaign.log)
    print()
    print(figure.to_text(float_format=".0f"))
    print(f"mean daily peers: {summary.mean_daily_peers:.0f} "
          f"(scaled paper value ≈ {30_500 * scale:.0f})")

    routers = figure.get("routers")
    all_ips = figure.get("all IP")
    ipv4 = figure.get("IPv4")
    ipv6 = figure.get("IPv6")

    # Unique IPs are fewer than unique peers every single day.
    for day in routers.xs:
        assert all_ips.y_at(day) < routers.y_at(day)
        assert ipv6.y_at(day) < ipv4.y_at(day)
    # The daily population is stable (low relative dispersion).
    values = np.asarray(routers.ys)
    assert values.std() / values.mean() < 0.10
    # The observed population lands near the scaled paper value.
    assert 0.7 * 30_500 * scale < summary.mean_daily_peers < 1.1 * 30_500 * scale
