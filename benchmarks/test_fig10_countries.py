"""Figure 10 — top-20 countries where I2P peers reside, Section 5.3.2.

Paper result: the United States leads, and the top six countries (US, RU,
GB, FR, CA, AU) contribute more than 40 % of the observed peers; the
top-20 countries exceed 60 %, the remainder coming from ~200 other
countries; ~30 countries with poor press-freedom scores contribute a
combined ≈6K peers, led by China, then Singapore and Turkey.
"""

from repro.core import (
    country_distribution,
    country_figure,
    press_freedom_summary,
    summarize_geography,
)


def test_figure_10_countries(benchmark, main_campaign):
    figure = benchmark.pedantic(
        lambda: country_figure(main_campaign.log, top_n=20), rounds=1, iterations=1
    )
    summary = summarize_geography(main_campaign.log)
    press = press_freedom_summary(main_campaign.log)
    print()
    print(figure.to_text(float_format=".1f"))
    print("top-10 countries:", country_distribution(main_campaign.log).most_common(10))
    print(f"top-6 share: {summary.top6_share:.1%} (paper >40%)")
    print(f"top-20 share: {summary.top20_share:.1%} (paper >60%)")
    print(
        f"poor press-freedom: {press['countries']} countries, "
        f"{press['total_peers']} peers, top {press['top']} "
        "(paper: 30 countries, ≈6K peers, led by CN/SG/TR)"
    )

    counts = country_distribution(main_campaign.log)
    ordered = [code for code, _ in counts.most_common()]
    # The United States hosts the most peers; the paper's other top-six
    # countries all appear near the top of the ranking.
    assert ordered[0] == "US"
    assert {"RU", "GB", "FR", "CA", "AU"} <= set(ordered[:10])
    # Concentration: top-6 > ~40 %, top-20 > ~60 %, long tail of countries.
    assert summary.top6_share > 0.33
    assert summary.top20_share > 0.55
    assert summary.countries_observed > 80
    # Poor-press-freedom group exists and is led by China.
    assert press["countries"] >= 15
    assert press["top"][0][0] == "CN"
    cumulative = figure.get("cumulative percentage")
    assert cumulative.is_monotonic_nondecreasing()
