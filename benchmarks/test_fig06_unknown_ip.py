"""Figure 6 — peers with unknown IP addresses, Section 5.1.

Paper result: >15K unknown-IP peers per day, of which ~14K are firewalled
(introducers present) and ~4K hidden (no address block), with ~2.6K peers
per day flipping between the two states.
"""

from repro.core import summarize_population, unknown_ip_figure


def test_figure_06_unknown_ip(benchmark, main_campaign):
    figure = benchmark.pedantic(
        lambda: unknown_ip_figure(main_campaign.log), rounds=1, iterations=1
    )
    summary = summarize_population(main_campaign.log)
    print()
    print(figure.to_text(float_format=".0f"))
    print(
        "daily means: "
        f"unknown-IP={summary.mean_daily_unknown_ip_peers:.0f}, "
        f"firewalled={summary.mean_daily_firewalled:.0f}, "
        f"hidden={summary.mean_daily_hidden:.0f}, "
        f"overlap={summary.mean_daily_overlap:.0f}"
    )

    # Roughly half of the daily peers have unknown IPs.
    assert 0.35 < summary.unknown_ip_share < 0.65
    # Firewalled peers dominate the unknown-IP group (≈14K vs ≈4K).
    assert summary.mean_daily_firewalled > 2.5 * summary.mean_daily_hidden
    # A non-trivial group flips between firewalled and hidden.
    assert summary.mean_daily_overlap > 0
    assert summary.mean_daily_overlap < summary.mean_daily_hidden * 1.5
    # Per-day identity: unknown-IP = firewalled + hidden.
    unknown = figure.get("unknown-IP")
    firewalled = figure.get("firewalled")
    hidden = figure.get("hidden")
    for day in unknown.xs:
        assert abs(unknown.y_at(day) - (firewalled.y_at(day) + hidden.y_at(day))) < 1e-6
