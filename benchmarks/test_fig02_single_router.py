"""Figure 2 — peers observed by a single high-end router (floodfill vs
non-floodfill mode), Section 4.1.

Paper result: a single 8 MB/s router observes roughly 15–16K of the ~32K
daily peers in either mode, with the non-floodfill phase slightly ahead of
the floodfill phase.
"""

from repro.core import single_router_experiment

from .conftest import bench_scale, bench_seed


def test_figure_02_single_router(benchmark):
    figure = benchmark.pedantic(
        lambda: single_router_experiment(
            days_per_mode=5, scale=bench_scale(), seed=bench_seed()
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.to_text(float_format=".0f"))

    floodfill = figure.get("floodfill")
    non_floodfill = figure.get("non-floodfill")
    ground_truth = 30_500 * bench_scale()

    # Both modes observe a large fraction (roughly half) of the network.
    for observed in floodfill.ys + non_floodfill.ys:
        assert 0.3 * ground_truth < observed < 0.8 * ground_truth
    # Daily counts are stable within each 5-day phase (no strong trend).
    for series in (floodfill, non_floodfill):
        assert max(series.ys) - min(series.ys) < 0.2 * ground_truth
    # The non-floodfill phase observes at least as much as the floodfill
    # phase at full monitor bandwidth (Figure 2's ordering).
    assert sum(non_floodfill.ys) / len(non_floodfill.ys) >= 0.9 * (
        sum(floodfill.ys) / len(floodfill.ys)
    )
