"""Figure 13 — blocking rates under different blacklist time windows,
Section 6.2.2.

Paper result: with a single day of collected addresses a censor operating
20 routers blocks more than 95 % of the peer IPs known to a stable victim
client, and 6 routers already reach ~90 %; extending the blacklist window
to 5 days pushes 10 routers above 95 %, and 10–30-day windows approach
~98 % with 20 routers.
"""

from repro.core import blocking_curve

WINDOWS = (1, 5, 10, 20, 30)


def test_figure_13_blocking(benchmark, main_campaign):
    figure = benchmark.pedantic(
        lambda: blocking_curve(
            main_campaign,
            router_counts=list(range(1, 21)),
            windows=WINDOWS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.to_text(float_format=".1f"))

    one_day = figure.get("1 day")
    five_days = figure.get("5 days")
    thirty_days = figure.get("30 days")

    # More censor routers never decrease the blocking rate.
    for series in figure.series.values():
        assert series.is_monotonic_nondecreasing()
    # Longer blacklist windows never decrease the blocking rate.
    for count in one_day.xs:
        assert five_days.y_at(count) >= one_day.y_at(count)
        assert thirty_days.y_at(count) >= five_days.y_at(count)
    # Paper-shaped headline numbers.
    assert one_day.y_at(1) > 40.0          # a single router already blocks a lot
    assert one_day.y_at(6) > 70.0          # paper: ~90 % with six routers
    assert one_day.y_at(20) > 80.0         # paper: >95 % with twenty routers
    assert five_days.y_at(10) > 90.0       # paper headline: >95 % with ten routers
    assert thirty_days.y_at(20) > 95.0     # long windows approach total blocking
