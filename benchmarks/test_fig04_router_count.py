"""Figure 4 — cumulative peers observed by operating 1–40 routers,
Section 4.3.

Paper result: the cumulative number of observed peers grows roughly
logarithmically with the number of monitoring routers, reaching ~32K at 40
routers; 20 routers already cover 95.5 % of that total, and each router
beyond ~35 only contributes another 10–30 peers.
"""

from repro.core import router_count_sweep

from .conftest import bench_scale, bench_seed


def test_figure_04_router_count(benchmark):
    figure, result = benchmark.pedantic(
        lambda: router_count_sweep(
            max_routers=40, days=5, scale=bench_scale(), seed=bench_seed()
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.to_text(float_format=".0f"))
    print(f"mean daily ground-truth population: {result.mean_daily_online:.0f}")

    series = figure.get("cumulative observed")
    assert len(series.points) == 40
    assert series.is_monotonic_nondecreasing()

    total_at_40 = series.y_at(40)
    # Twenty routers already observe ~95 % of what forty routers observe.
    assert series.y_at(20) / total_at_40 > 0.93
    # Rapid growth up to ~20 routers, then convergence.
    assert series.y_at(5) / total_at_40 > 0.75
    gains = [b - a for a, b in zip(series.ys, series.ys[1:])]
    assert gains[0] > gains[-1] * 3
    # The marginal router beyond 35 adds only a sliver of the population.
    late_gain = total_at_40 - series.y_at(35)
    assert late_gain < 0.01 * total_at_40
    # Forty routers cover the vast majority of the daily population.
    assert total_at_40 / result.mean_daily_online > 0.85
