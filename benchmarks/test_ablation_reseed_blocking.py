"""Ablation — reseed-server blocking and manual reseeding (Section 6.1).

Not a numbered figure in the paper, but Section 6.1 argues that (a) reseed
servers are a single point of blockage for *new* clients and (b) the
``i2pseeds.su3`` manual-reseed mechanism restores bootstrap for users who
obtain the file through a secondary channel.  This benchmark quantifies
both claims on the simulated network.
"""

import random

from repro.core import reseed_blocking_curve, simulate_reseed_blocking
from repro.core.usability import client_netdb_from_dayview
from repro.sim import DEFAULT_RESEED_SERVERS, I2PPopulation, PopulationConfig

from .conftest import bench_seed


def _routerinfos():
    population = I2PPopulation(
        PopulationConfig(target_daily_population=800, horizon_days=2, seed=bench_seed() + 11)
    )
    view = population.day_view(0)
    return client_netdb_from_dayview(population, view, size=400, rng=random.Random(2))


def test_ablation_reseed_blocking(benchmark):
    routerinfos = _routerinfos()
    figure = benchmark.pedantic(
        lambda: reseed_blocking_curve(
            routerinfos, clients=150, manual_reseed_share=0.3, seed=bench_seed()
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.to_text(float_format=".1f"))

    plain = figure.get("no manual reseed")
    manual = [s for name, s in figure.series.items() if name != "no manual reseed"][0]
    total_servers = len(DEFAULT_RESEED_SERVERS)

    # No blocking: everyone bootstraps.
    assert plain.y_at(0) == 100.0
    # Full blocking without manual reseeding: bootstrap is impossible.
    assert plain.y_at(total_servers) == 0.0
    # Manual reseeding rescues roughly the share of clients that obtain a file.
    assert 15.0 < manual.y_at(total_servers) < 50.0
    # Partial blocking is leaky: blocking half the servers still lets many in.
    assert plain.y_at(total_servers // 2) > 50.0

    # Spot-check the underlying simulation outcome object.
    outcome = simulate_reseed_blocking(
        routerinfos, blocked_servers=total_servers, clients=100,
        manual_reseed_share=0.3, seed=bench_seed(),
    )
    assert outcome.manual_reseed_successes == outcome.bootstrap_successes
