"""Ablation — collateral damage of port-based blocking (Section 2.2.2).

The paper argues that port-based censorship is impractical against I2P:
routers pick arbitrary ports in 9000–31000 (TCP and UDP), so blocking that
range also blocks many unrelated services, while blocking UDP/123 (NTP) to
starve I2P of time sync would break NTP for everyone.  This benchmark
quantifies how widely the simulated network's listening ports are spread.
"""

import random

from repro.sim import I2PPopulation, PopulationConfig
from repro.transport import I2P_PORT_RANGE, is_possible_i2p_port

from .conftest import bench_seed


def _listening_ports():
    population = I2PPopulation(
        PopulationConfig(target_daily_population=2000, horizon_days=1, seed=bench_seed() + 3)
    )
    view = population.day_view(0)
    return [s.port for s in view.snapshots if s.has_valid_ip]


def test_ablation_port_blocking(benchmark):
    ports = benchmark(_listening_ports)
    low, high = I2P_PORT_RANGE
    span = high - low + 1
    distinct = len(set(ports))
    buckets = {}
    for port in ports:
        buckets[(port - low) // 2000] = buckets.get((port - low) // 2000, 0) + 1
    largest_bucket_share = max(buckets.values()) / len(ports)
    print()
    print(f"routers with public ports: {len(ports)}")
    print(f"distinct ports in use: {distinct}")
    print(f"port range that must be blocked: {low}-{high} ({span} ports)")
    print(f"largest 2000-port bucket holds {largest_bucket_share:.1%} of routers")

    # Every router listens inside the documented range.
    assert all(is_possible_i2p_port(p) for p in ports)
    # Ports are spread widely: no narrow sub-range captures the network, so
    # a censor must block the entire 22,001-port range (huge collateral
    # damage) to achieve port-based blocking.
    assert distinct > 0.5 * len(ports)
    assert largest_bucket_share < 0.25
    assert span > 20_000
