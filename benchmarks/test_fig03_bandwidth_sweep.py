"""Figure 3 — observed peers vs shared bandwidth (7 floodfill + 7
non-floodfill routers), Section 4.2.

Paper result: floodfill routers observe 1.5–2K more peers than
non-floodfill routers below ~2 MB/s; the ordering flips above ~2 MB/s; the
union of each floodfill/non-floodfill pair is larger than either individual
view (≈17–18K of ~32K).
"""

from repro.core import bandwidth_sweep

from .conftest import bench_scale, bench_seed

BANDWIDTHS = (128, 256, 1000, 2000, 3000, 4000, 5000)


def test_figure_03_bandwidth_sweep(benchmark):
    figure = benchmark.pedantic(
        lambda: bandwidth_sweep(
            bandwidths_kbps=BANDWIDTHS, days=3, scale=bench_scale(), seed=bench_seed()
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.to_text(float_format=".0f"))

    floodfill = figure.get("floodfill")
    non_floodfill = figure.get("non-floodfill")
    both = figure.get("both")

    # Low bandwidth: floodfill observes more peers than non-floodfill.
    assert floodfill.y_at(128) > non_floodfill.y_at(128)
    assert floodfill.y_at(256) > non_floodfill.y_at(256)
    # High bandwidth: the ordering flips (crossover below 5 MB/s).
    assert non_floodfill.y_at(5000) > floodfill.y_at(5000)
    # The combined pair always dominates each individual mode.
    for bandwidth in BANDWIDTHS:
        assert both.y_at(bandwidth) >= floodfill.y_at(bandwidth)
        assert both.y_at(bandwidth) >= non_floodfill.y_at(bandwidth)
    # The combined view varies much less across the sweep than the
    # non-floodfill view does (the paper reports it as roughly constant).
    both_spread = (max(both.ys) - min(both.ys)) / max(both.ys)
    nff_spread = (max(non_floodfill.ys) - min(non_floodfill.ys)) / max(non_floodfill.ys)
    assert both_spread < nff_spread
