"""Benchmark package marker.

The benchmark modules use relative imports (``from .conftest import …``),
which require ``benchmarks`` to be an importable package under pytest's
default import mode.
"""
