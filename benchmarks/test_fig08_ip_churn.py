"""Figure 8 — number of IP addresses peers are associated with,
Section 5.2.2.

Paper result: 45 % of known-IP peers kept a single address over the
three-month campaign while 55 % were associated with two or more; a small
group of 460 peers (0.65 %) accumulated more than one hundred addresses.
"""

from repro.core import ip_churn, ip_churn_figure

from .conftest import bench_days


def test_figure_08_ip_churn(benchmark, main_campaign):
    figure = benchmark.pedantic(
        lambda: ip_churn_figure(main_campaign.log, max_addresses=16),
        rounds=1,
        iterations=1,
    )
    summary = ip_churn(main_campaign.log)
    print()
    print(figure.to_text(float_format=".1f"))
    print(
        f"known-IP peers: {summary.known_ip_peers}; "
        f"single-IP share: {summary.single_ip_share:.1%} (paper 45%); "
        f"multi-IP share: {summary.multi_ip_share:.1%} (paper 55%); "
        f">100 addresses: {summary.peers_over_100_ips} (paper 460 over 90 days)"
    )

    counts = figure.get("observed peers")
    # Peers with exactly one address form the single largest bucket.
    assert counts.y_at(1) == max(counts.ys)
    # A substantial fraction of peers rotates addresses.  The paper's 55 %
    # is reached over 90 days; shorter campaigns see proportionally less.
    minimum_multi_share = 0.30 if bench_days() >= 30 else 0.15
    assert summary.multi_ip_share > minimum_multi_share
    # The single/multi split is a partition of the known-IP peers.
    assert summary.single_ip_peers + summary.multi_ip_peers == summary.known_ip_peers
