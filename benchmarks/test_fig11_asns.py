"""Figure 11 — top-20 autonomous systems where I2P peers reside,
Section 5.3.2.

Paper result: AS7922 (Comcast Cable Communications) leads with >8K peers;
the top-20 ASes together account for more than 30 % of the observed peers.
"""

from repro.core import asn_distribution, asn_figure


def test_figure_11_asns(benchmark, main_campaign):
    figure = benchmark.pedantic(
        lambda: asn_figure(main_campaign.log, top_n=20), rounds=1, iterations=1
    )
    counts = asn_distribution(main_campaign.log)
    print()
    print(figure.to_text(float_format=".1f"))
    print("top-10 ASes:", counts.most_common(10))

    total = sum(counts.values())
    ranked = counts.most_common(20)
    # Comcast (AS7922) is the single largest origin AS.
    assert ranked[0][0] == 7922
    # Its share is in the mid-single-digit percent range (paper ≈6 %).
    assert 0.02 < ranked[0][1] / total < 0.15
    # The top-20 ASes jointly exceed ~30 % of observed peers.
    top20_share = sum(count for _, count in ranked) / total
    assert top20_share > 0.30
    cumulative = figure.get("cumulative percentage")
    assert cumulative.is_monotonic_nondecreasing()
    assert cumulative.ys[-1] > 30.0
