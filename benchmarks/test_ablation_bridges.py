"""Ablation — bridge strategies for censored users (Section 7.1).

The paper proposes using (a) newly joined peers, whose addresses the censor
has not yet harvested, and (b) firewalled peers, which have no blockable
address at all, as bridges for censored users.  This benchmark measures the
size and composition of that candidate pool against the Figure 13 censor,
and how quickly new-peer bridges are discovered and blocked.
"""

from repro.core import bridge_pool_summary, bridge_survival_curve


def test_ablation_bridge_pool(benchmark, main_campaign):
    summary = benchmark.pedantic(
        lambda: bridge_pool_summary(
            main_campaign, censor_routers=10, blacklist_window_days=5
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for key, value in summary.as_dict().items():
        print(f"{key}: {value}")
    survival = bridge_survival_curve(
        main_campaign, censor_routers=10, blacklist_window_days=30, horizon_days=6
    )
    print()
    print(survival.to_text(float_format=".1f"))

    # The censor misses only a minority of addressable peers...
    assert summary.unblocked_share < 0.45
    # ...but the firewalled pool (unblockable by address) stays large —
    # the paper reports ~14K such peers per day.
    assert summary.firewalled_pool > 0.3 * summary.total_online_known_ip
    # Newly joined peers are over-represented among the unblocked addresses.
    if summary.unblocked_known_ip:
        assert summary.new_peer_share_of_unblocked >= 0.0

    series = survival.get("new-peer bridges unblocked")
    if series.points:
        # Bridge survival never increases as the censor keeps monitoring.
        assert all(b <= a + 1e-9 for a, b in zip(series.ys, series.ys[1:]))
