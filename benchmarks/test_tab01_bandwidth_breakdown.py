"""Table 1 — percentage of routers per bandwidth tier, by group, plus the
floodfill-based population extrapolation of Section 5.3.1.

Paper results:

* the overall network and both reachability groups are dominated by the
  default ``L`` tier with ``N`` second, while the *floodfill* group is
  dominated by ``N``;
* ~8.8 % of observed peers carry the floodfill flag, but ~29 % of them are
  manually enabled K/L/M routers that do not meet the automatic-promotion
  requirement, leaving ≈1,917 qualified floodfills;
* dividing by the official ~6 % automatic-floodfill share estimates the
  population at ≈31,950 — close to the ~30.5K observed daily peers.
"""

from repro.core import (
    bandwidth_breakdown,
    estimate_population,
    render_table1,
)


def test_table_01_bandwidth_breakdown(benchmark, main_campaign):
    breakdown = benchmark.pedantic(
        lambda: bandwidth_breakdown(main_campaign.log), rounds=1, iterations=1
    )
    estimate = estimate_population(main_campaign.log)
    print()
    print(render_table1(main_campaign.log))
    print()
    for key, value in estimate.as_dict().items():
        print(f"{key}: {value:.3f}")

    total = breakdown["total"]
    floodfill = breakdown["floodfill"]
    # Network-wide: L dominates, N second (same as Figure 9).
    assert total["L"] == max(total.values())
    assert total["N"] == sorted(total.values())[-2]
    # Floodfill group: N dominates and L's share collapses versus the total.
    assert floodfill["N"] == max(floodfill.values())
    assert floodfill["N"] > total["N"]
    assert floodfill["L"] < total["L"]
    # High-bandwidth tiers (P/X) are over-represented among floodfills.
    assert floodfill["P"] > total["P"]
    assert floodfill["X"] > total["X"]

    # Extrapolation: ~9 % floodfills, a majority of them qualified, and the
    # resulting estimate close to the observed daily population.
    assert 0.05 < estimate.observed_floodfill_share < 0.15
    assert 0.55 < estimate.qualified_share_of_floodfills < 0.9
    assert 0.8 < estimate.estimate_to_observed_ratio < 1.6
