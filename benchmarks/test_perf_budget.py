"""Perf budget — the columnar engine keeps paper-scale campaigns cheap.

Unlike the figure benchmarks (which default to ``REPRO_BENCH_SCALE=0.1``),
this module always runs the main campaign at **scale 1.0** (~30.5K daily
peers) for 10 days, because the columnar engine's whole point is that full
scale is affordable.  It writes ``BENCH_campaign.json`` at the repository
root with:

* ``campaign_wall_seconds`` — wall time of the 20-router main campaign
  (10 days, scale 1.0, daily IPs + victim client);
* ``campaign_peer_days`` / ``campaign_peer_days_per_second`` — throughput
  in simulated peer-days;
* ``snapshot_allocations`` — ``PeerDaySnapshot`` objects materialised
  during the run (the vectorised pipeline must not allocate any);
* ``network_messages_per_second`` — DatabaseStore/Lookup throughput of a
  300-router message-level network convergence round.

The assertions are deliberately loose sanity floors (CI machines vary);
the JSON file carries the actual trajectory from PR to PR.
"""

import json
import os
import time

from repro.core.campaign import run_main_campaign
from repro.netdb.routerinfo import BandwidthTier
from repro.sim.network import I2PNetwork
from repro.sim.population import reset_snapshot_allocations, snapshot_allocations

BENCH_DAYS = 10
BENCH_SCALE = 1.0

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_campaign.json")


def _bench_campaign():
    reset_snapshot_allocations()
    start = time.perf_counter()
    result = run_main_campaign(
        days=BENCH_DAYS,
        scale=BENCH_SCALE,
        seed=2018,
        collect_daily_ips=True,
        include_victim_client=True,
    )
    wall = time.perf_counter() - start
    peer_days = int(sum(result.daily_online_population))
    return {
        "campaign_days": BENCH_DAYS,
        "campaign_scale": BENCH_SCALE,
        "campaign_wall_seconds": round(wall, 3),
        "campaign_mean_daily_online": round(result.mean_daily_online, 1),
        "campaign_peer_days": peer_days,
        "campaign_peer_days_per_second": round(peer_days / wall, 1),
        "campaign_unique_peers": result.log.unique_peer_count,
        "snapshot_allocations": snapshot_allocations(),
    }


def _bench_network(router_count: int = 300, floodfill_count: int = 30):
    network = I2PNetwork(seed=2018)
    for _ in range(floodfill_count):
        network.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
    network.batch_add_routers(router_count - floodfill_count)
    before = network.messages_delivered
    start = time.perf_counter()
    network.run_convergence_rounds(rounds=1)
    wall = time.perf_counter() - start
    messages = network.messages_delivered - before
    return {
        "network_routers": router_count,
        "network_convergence_messages": messages,
        "network_convergence_seconds": round(wall, 3),
        "network_messages_per_second": round(messages / wall, 1),
    }


def test_perf_budget():
    payload = {"generated_by": "benchmarks/test_perf_budget.py"}
    payload.update(_bench_campaign())
    payload.update(_bench_network())
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))

    # The columnar hot path must not materialise a single snapshot.
    assert payload["snapshot_allocations"] == 0
    # Generous wall-clock ceiling: the row-oriented engine needed ~12s for
    # this configuration; the columnar engine runs it in a few seconds.
    assert payload["campaign_wall_seconds"] < 60.0
    assert payload["campaign_peer_days_per_second"] > 10_000
    assert payload["network_messages_per_second"] > 100
