"""Perf budget — the columnar engine keeps paper-scale campaigns cheap.

Unlike the figure benchmarks (which default to ``REPRO_BENCH_SCALE=0.1``),
this module always runs the main campaign at **scale 1.0** (~30.5K daily
peers) for 10 days, because the columnar engine's whole point is that full
scale is affordable.  It writes ``BENCH_campaign.json`` at the repository
root with:

* ``campaign_wall_seconds`` — wall time of the 20-router main campaign
  (10 days, scale 1.0, daily IPs + victim client) on a cold exposure
  engine, plus ``campaign_days`` as *actually recorded* by the run;
* ``campaign_peer_days`` / ``campaign_peer_days_per_second`` — throughput
  in simulated peer-days;
* ``snapshot_allocations`` — ``PeerDaySnapshot`` objects materialised
  during the run (the vectorised pipeline must not allocate any);
* ``figure_suite_wall_seconds`` / ``figure_suite_to_campaign_ratio`` — the
  whole figure pipeline (main campaign + Figures 2–4 sweeps + the
  longevity / IP-churn / capacity analyses) off ONE shared exposure; the
  ratio against the single campaign is the shared-exposure engine's
  headline number and must stay ≤ 1.5;
* ``cached_two_sweep_wall_seconds`` — bandwidth + router-count sweeps
  re-run against the warm engine (pure cache hits);
* ``columnar_longevity_seconds`` / ``columnar_ip_churn_seconds`` — the
  accumulator-backed heavy analyses;
* ``network_curve`` — netDb publish throughput (DatabaseStoreMessages per
  second, steady state on the batched message plane) across network sizes
  (default 300 / 1 000 / 10 000 routers; override the axis with a
  comma-separated ``REPRO_BENCH_NETDB_COUNTS``).  Replaces the schema-v3
  single-point ``network_messages_per_second``;
* ``network_fault_overhead_ratio`` — 300-router steady-state publish
  round time with an attached all-zero ``FaultPlan`` over the plain
  round time.  The zero-fault path must cost nothing measurable
  (< 5 %): a no-op plan never builds an injector, so every fault check
  is one ``is None`` branch;
* ``accumulator_bytes`` / ``accumulator_peak_bytes`` — the observation
  log's columnar accumulator footprint (current and high-water), i.e. the
  working set of every streamed analysis;
* ``peak_rss_kib`` — process-wide peak resident set size (``ru_maxrss``);
* ``exposure_backend`` — the backend the main campaign entry ran on
  (always ``in_memory``; the out-of-core numbers live under
  ``memory_budget``);
* ``enrichment`` — the geo/ASN enrichment plane's batched lookup
  throughput (``resolve_ints`` over one million uniformly random IPv4
  addresses, best of three) for the synthetic provider and for a compiled
  sorted-range database, which must agree element-for-element; the
  range-DB path carries a hard ≥ 1M lookups/sec floor and the same > 20 %
  regression guard as the campaign throughput, plus the hybrid cache's
  hit ratio on a hot re-lookup mix;
* ``campaign_service`` — a four-job ``monitor_fraction_sweep`` grid (one
  exposure digest) through the campaign service's planner + queue + runner
  versus the same four jobs as standalone ``run_scenario`` calls with cold
  engines.  ``grid_speedup`` (Σ standalone wall / grid wall) carries a hard
  ≥ 1.5× floor — the digest-grouped queue must amortise the shared
  ``SharedExposure`` build — and joins the > 20 % regression guard;
  ``queue_overhead_seconds_per_job`` isolates the claim/persist/commit cost
  the service adds around each job;
* ``memory_budget`` — three single-campaign subprocess runs through
  ``python -m repro.memory_budget`` (``ru_maxrss`` is process-wide, so a
  clean peak needs a fresh process each): the scale-1.0 in-memory
  reference, a scale-1.0 out-of-core run whose summary digest must equal
  the reference's (cross-backend byte identity at full scale), and the
  scale-``REPRO_BENCH_MEMORY_SCALE`` (default 10) out-of-core run whose
  peak RSS must stay under the fixed ``MEMORY_BUDGET_MIB`` ceiling.

The wall-clock assertions are deliberately loose sanity floors (CI
machines vary), **except** the peer-days/sec regression guard: if the
committed ``BENCH_campaign.json`` recorded a throughput more than 20 %
above the current run's best-of-``CAMPAIGN_REPETITIONS``, the benchmark
fails loudly — the trajectory from PR to PR must stay monotone on
comparable hardware.
"""

import json
import os
import resource
import sys
import time

from repro.core.campaign import run_figure_suite, run_main_campaign
from repro.core.churn_analysis import ip_churn, longevity
from repro.sim.exposure import ExposureEngine
from repro.sim.netdb_scale import DEFAULT_ROUTER_COUNTS, measure_netdb_scale
from repro.sim.population import reset_snapshot_allocations, snapshot_allocations

BENCH_DAYS = 10
BENCH_SCALE = 1.0
SCHEMA_VERSION = 8

#: Scale of the out-of-core memory-budget run (env-overridable so shared
#: CI runners can use a smaller multiple of the paper's population).
MEMORY_BUDGET_SCALE = float(os.environ.get("REPRO_BENCH_MEMORY_SCALE", "10"))

#: Peak-RSS ceiling (MiB) for the out-of-core campaign at
#: MEMORY_BUDGET_SCALE.  544 = 2x the scale-1.0 in-memory campaign peak
#: committed before the out-of-core store landed (BENCH schema v5:
#: 272 MiB) — a fixed budget, because the live scale-1.0 peak keeps
#: dropping (172 MiB as of schema v6) and would silently tighten a
#: relative gate.  Override alongside REPRO_BENCH_MEMORY_SCALE when
#: benchmarking a different population multiple.
MEMORY_BUDGET_MIB = float(os.environ.get("REPRO_BENCH_MEMORY_BUDGET_MIB", "544"))

#: Repetitions of the scale-1.0 campaign timing; the best run feeds the
#: throughput entry and the regression guard (noise — a busy runner, a
#: heap fragmented by earlier suite tests — only ever slows a run down).
CAMPAIGN_REPETITIONS = 3

#: Allowed relative slowdown of a publish round with a no-op FaultPlan
#: attached (the disabled-fault path must stay on the fast path).
FAULT_OVERHEAD_TOLERANCE = 0.05

#: Allowed relative drop of peer-days/sec vs the committed baseline.
REGRESSION_TOLERANCE = 0.20

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_campaign.json")


def _previous_payload():
    """The *committed* benchmark baseline.

    Read from git so repeated local runs compare against the same floor
    (the file on disk is rewritten by every successful run); falls back to
    the on-disk file outside a git checkout.
    """
    import subprocess

    try:
        blob = subprocess.run(
            ["git", "show", "HEAD:BENCH_campaign.json"],
            cwd=_REPO_ROOT,
            capture_output=True,
            timeout=10,
        )
        if blob.returncode == 0:
            return json.loads(blob.stdout)
    except (OSError, ValueError, subprocess.SubprocessError):
        pass
    try:
        with open(_BENCH_PATH) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {}


def _bench_campaign():
    wall = None
    for _ in range(CAMPAIGN_REPETITIONS):
        reset_snapshot_allocations()
        start = time.perf_counter()
        result = run_main_campaign(
            days=BENCH_DAYS,
            scale=BENCH_SCALE,
            seed=2018,
            collect_daily_ips=True,
            include_victim_client=True,
            engine=ExposureEngine(),  # cold: measures the uncached path
        )
        elapsed = time.perf_counter() - start
        wall = elapsed if wall is None else min(wall, elapsed)
    peer_days = int(sum(result.daily_online_population))
    acc_now, acc_peak = result.log.accumulator_memory_bytes()
    return {
        "campaign_days": result.log.days_recorded,
        "campaign_scale": BENCH_SCALE,
        "campaign_wall_seconds": round(wall, 3),
        "campaign_mean_daily_online": round(result.mean_daily_online, 1),
        "campaign_peer_days": peer_days,
        "campaign_peer_days_per_second": round(peer_days / wall, 1),
        "campaign_unique_peers": result.log.unique_peer_count,
        "snapshot_allocations": snapshot_allocations(),
        # Memory telemetry: the observation log's accumulator arrays (the
        # streamed-analysis working set) and the process-wide peak RSS.
        # ru_maxrss is KiB on Linux but bytes on macOS — normalise to KiB.
        "accumulator_bytes": acc_now,
        "accumulator_peak_bytes": acc_peak,
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        // (1024 if sys.platform == "darwin" else 1),
        "exposure_backend": "in_memory",
    }


def _run_memory_budget(extra_args):
    """One campaign in a fresh subprocess via ``repro.memory_budget``."""
    import subprocess

    command = [
        sys.executable,
        "-m",
        "repro.memory_budget",
        "--days",
        str(BENCH_DAYS),
        "--seed",
        "2018",
        *extra_args,
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        command, capture_output=True, text=True, env=env, timeout=1800
    )
    assert completed.returncode == 0, (
        f"memory-budget run {' '.join(extra_args)} failed:\n"
        f"{completed.stdout}\n{completed.stderr}"
    )
    return json.loads(completed.stdout)


def _bench_memory_budget(tmp_dir):
    reference = _run_memory_budget(
        ["--scale", "1.0", "--backend", "in-memory"]
    )
    ooc_full_scale = _run_memory_budget(
        [
            "--scale",
            "1.0",
            "--backend",
            "out-of-core",
            "--cache-dir",
            os.path.join(tmp_dir, "scale1"),
        ]
    )
    ooc_large = _run_memory_budget(
        [
            "--scale",
            str(MEMORY_BUDGET_SCALE),
            "--backend",
            "out-of-core",
            "--cache-dir",
            os.path.join(tmp_dir, "large"),
        ]
    )
    return {
        "memory_budget": {
            "reference_in_memory": reference,
            "out_of_core_scale1": ooc_full_scale,
            "out_of_core_large": ooc_large,
            "budget_mib": MEMORY_BUDGET_MIB,
        }
    }


def _bench_figure_suite():
    """The whole figure pipeline off one shared exposure, plus warm re-runs."""
    from repro.core.campaign import bandwidth_sweep, router_count_sweep

    start = time.perf_counter()
    suite = run_figure_suite(days=BENCH_DAYS, scale=BENCH_SCALE, seed=2018)
    suite_wall = time.perf_counter() - start

    # The two sweeps again, against the warm engine: pure cache hits.
    start = time.perf_counter()
    bandwidth_sweep(
        days=3, scale=BENCH_SCALE, seed=2018, engine=suite.engine,
        horizon_days=BENCH_DAYS,
    )
    router_count_sweep(
        days=5, scale=BENCH_SCALE, seed=2018, engine=suite.engine,
        horizon_days=BENCH_DAYS,
    )
    two_sweep_wall = time.perf_counter() - start

    log = suite.campaign.log
    start = time.perf_counter()
    longevity(log, thresholds=(3, 7))
    longevity_wall = time.perf_counter() - start
    start = time.perf_counter()
    ip_churn(log)
    ip_churn_wall = time.perf_counter() - start

    return {
        "figure_suite_wall_seconds": round(suite_wall, 3),
        "cached_two_sweep_wall_seconds": round(two_sweep_wall, 3),
        "columnar_longevity_seconds": round(longevity_wall, 4),
        "columnar_ip_churn_seconds": round(ip_churn_wall, 4),
    }


#: Batch size of the enrichment lookup benchmark and repetitions per
#: provider (best-of, like the campaign timing: noise only slows runs).
ENRICHMENT_BATCH = 1_000_000
ENRICHMENT_REPETITIONS = 3

#: Hard floor on batched range-DB lookups (the PR 9 acceptance bar).
ENRICHMENT_MIN_LOOKUPS_PER_SECOND = 1_000_000


def _bench_enrichment(tmp_dir):
    """Batched geo/ASN lookups: synthetic registry vs compiled range DB.

    Both providers resolve the same one million uniformly random IPv4
    addresses through their vectorised ``resolve_ints`` path; the answers
    must agree element-for-element (the cross-provider equivalence the
    enrichment plane promises).  A hot re-lookup mix through the hybrid
    cache reports the scalar path's hit ratio.
    """
    import numpy as np

    from repro.enrichment import (
        HybridCacheProvider,
        RangeDbProvider,
        SyntheticProvider,
        compile_range_db,
        int_to_ipv4,
        rows_from_registry,
    )
    from repro.sim.geo import default_registry

    registry = default_registry()
    synthetic = SyntheticProvider(registry)
    db_path = os.path.join(tmp_dir, "bench_geo.db")
    compile_range_db(rows_from_registry(registry), db_path)
    range_db = RangeDbProvider(db_path)

    rng = np.random.default_rng(2018)
    addrs = rng.integers(0, 2**32, size=ENRICHMENT_BATCH, dtype=np.uint32)

    def best_rate(provider):
        wall = None
        answers = None
        for _ in range(ENRICHMENT_REPETITIONS):
            start = time.perf_counter()
            answers = provider.resolve_ints(addrs)
            elapsed = time.perf_counter() - start
            wall = elapsed if wall is None else min(wall, elapsed)
        return answers, addrs.size / wall

    synthetic_answers, synthetic_rate = best_rate(synthetic)
    range_db_answers, range_db_rate = best_rate(range_db)
    assert np.array_equal(synthetic_answers, range_db_answers), (
        "synthetic and range-DB providers disagree on batched lookups"
    )

    # Hybrid-cache hit ratio on a hot working set: 64 addresses looked up
    # 2048 times round-robin — everything past the first pass is a memory
    # hit, so the ratio lands just under 1 (64/2048 misses).
    cache = HybridCacheProvider(range_db, capacity=512)
    hot = [int_to_ipv4(int(addr)) for addr in addrs[:64]]
    for index in range(2048):
        cache.lookup(hot[index % len(hot)])
    stats = cache.stats.as_dict()
    range_db.close()
    return {
        "enrichment": {
            "batch_size": ENRICHMENT_BATCH,
            "synthetic_lookups_per_second": round(synthetic_rate, 1),
            "range_db_lookups_per_second": round(range_db_rate, 1),
            "cache_hit_ratio": round(stats["hit_ratio"], 4),
            "cache_memory_hits": stats["memory_hits"],
            "cache_misses": stats["misses"],
        }
    }


#: Hard floor on the campaign service's grid-vs-standalone speedup: a
#: four-job, one-digest grid amortises its shared exposure build, so even
#: with queue/persist overhead it must beat four cold standalone runs by
#: a wide margin.  The ratio compares two timings from the same process on
#: the same machine, so unlike the wall-clock ceilings it is not
#: hardware-relative.
GRID_SPEEDUP_FLOOR = 1.5


def _bench_campaign_service(tmp_dir):
    """A digest-grouped 4-job grid vs the same jobs run standalone.

    The grid side goes through the full service stack — planner, SQLite
    queue claims, result-store persistence, telemetry — with one in-memory
    exposure engine; the standalone side calls ``run_scenario`` four times
    with a cold engine each (what a user scripting ``repro run`` in a loop
    would pay).  Telemetry proves the grid built its ``SharedExposure``
    exactly once.
    """
    from repro.core import run_scenario
    from repro.service import (
        GridAxis,
        GridSpec,
        JobQueue,
        Telemetry,
        execute_grid,
        plan_grid,
        read_events,
    )

    spec = GridSpec(
        scenario="monitor_fraction_sweep",
        axes=(
            GridAxis(
                "params.fractions",
                ((0.2, 0.5), (0.3, 0.6), (0.4, 0.8), (0.5, 1.0)),
            ),
        ),
        scale=BENCH_SCALE,
        seed=2018,
        days=BENCH_DAYS,
    )
    plan = plan_grid(spec)
    assert len(plan.shared_digests) == 1  # the whole grid shares one build
    db_path = os.path.join(tmp_dir, "bench_service.sqlite")
    trace_path = os.path.join(tmp_dir, "bench_service.telemetry.jsonl")
    with JobQueue(db_path) as queue:
        queue.enqueue_plan(plan)
    start = time.perf_counter()
    with Telemetry(trace_path) as telemetry:
        outcome = execute_grid(
            db_path, plan.grid_id, ExposureEngine, telemetry=telemetry
        )
    grid_wall = time.perf_counter() - start
    assert outcome.done == len(plan.jobs)
    builds = sum(
        int(record["builds"])
        for record in read_events(trace_path)
        if record.get("name") == "exposure.cache"
    )

    standalone_wall = 0.0
    for job in plan.jobs:
        start = time.perf_counter()
        run_scenario(
            job.resolved_spec(),
            scale=job.scale,
            seed=job.seed,
            engine=ExposureEngine(),  # cold: each run pays the full build
        )
        standalone_wall += time.perf_counter() - start

    in_job = sum(outcome.job_wall_seconds.values())
    overhead_per_job = max(0.0, grid_wall - in_job) / len(plan.jobs)
    return {
        "campaign_service": {
            "grid_jobs": len(plan.jobs),
            "grid_exposure_builds": builds,
            "grid_wall_seconds": round(grid_wall, 3),
            "standalone_wall_seconds": round(standalone_wall, 3),
            "grid_speedup": round(standalone_wall / grid_wall, 3),
            "queue_overhead_seconds_per_job": round(overhead_per_job, 4),
        }
    }


def _netdb_counts():
    """The throughput curve's router-count axis (env-overridable)."""
    raw = os.environ.get("REPRO_BENCH_NETDB_COUNTS", "")
    if not raw.strip():
        return DEFAULT_ROUTER_COUNTS
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _bench_network():
    """Steady-state netDb publish throughput across network sizes.

    The 300-router entry feeds the regression guard, and its rounds take
    ~1ms each — a single scheduler hiccup during the nine measured
    rounds reads as a double-digit "regression".  That entry keeps the
    best of three repetitions (noise only ever slows a run down); the
    larger, unguarded points stay single-shot.
    """
    curve = []
    for router_count in _netdb_counts():
        repetitions = 3 if router_count == 300 else 1
        point = None
        for _ in range(repetitions):
            sample = measure_netdb_scale(router_count, seed=2018)
            if point is None or sample.messages_per_second > point.messages_per_second:
                point = sample
        entry = point.as_dict()
        entry["messages_per_second"] = round(entry["messages_per_second"], 1)
        entry["median_round_seconds"] = round(entry["median_round_seconds"], 5)
        curve.append(entry)
    return {"network_curve": curve}


def _bench_fault_overhead():
    """Publish round time at 300 routers: all-zero FaultPlan vs no plan.

    The quantity under test is a ratio of two ~1ms timings, where a
    stray scheduler hiccup reads as several percent, so the estimator is
    deliberately sturdier than the throughput curve's: three alternating
    repetitions per side (alternation cancels slow machine-wide drift)
    and the *minimum* of the per-repetition medians (real overhead slows
    the best case too; noise only ever slows a run down).
    """
    from repro.sim.faults import FaultPlan

    base_medians = []
    zero_plan_medians = []
    for _ in range(3):
        base_medians.append(
            measure_netdb_scale(300, seed=2018, measure_rounds=9).median_round_seconds
        )
        zero_plan_medians.append(
            measure_netdb_scale(
                300, seed=2018, measure_rounds=9, fault_plan=FaultPlan()
            ).median_round_seconds
        )
    base = min(base_medians)
    zero_plan = min(zero_plan_medians)
    return {
        "network_fault_base_seconds": round(base, 5),
        "network_fault_zero_plan_seconds": round(zero_plan, 5),
        "network_fault_overhead_ratio": round(
            zero_plan / base if base > 0 else 1.0, 4
        ),
    }


def test_perf_budget(tmp_path):
    previous = _previous_payload()
    payload = {
        "generated_by": "benchmarks/test_perf_budget.py",
        "schema_version": SCHEMA_VERSION,
    }
    # Memory-budget subprocesses run FIRST: a forked/spawned child counts
    # the parent's resident pages toward its own ru_maxrss until exec, so
    # spawning from a post-campaign pytest process (~0.5 GiB) would floor
    # every child's "peak" at the parent's size.
    payload.update(_bench_memory_budget(str(tmp_path)))
    payload.update(_bench_campaign())
    payload.update(_bench_enrichment(str(tmp_path)))
    payload.update(_bench_figure_suite())
    payload.update(_bench_campaign_service(str(tmp_path)))
    payload.update(_bench_network())
    payload.update(_bench_fault_overhead())
    payload["figure_suite_to_campaign_ratio"] = round(
        payload["figure_suite_wall_seconds"] / payload["campaign_wall_seconds"], 3
    )
    print(json.dumps(payload, indent=2, sort_keys=True))

    # The columnar hot path must not materialise a single snapshot.
    assert payload["snapshot_allocations"] == 0
    # Memory telemetry must be live (Linux reports ru_maxrss in KiB).
    assert payload["accumulator_peak_bytes"] >= payload["accumulator_bytes"] > 0
    assert payload["peak_rss_kib"] > 0
    # Generous wall-clock ceiling: the row-oriented engine needed ~12s for
    # this configuration; the columnar engine runs it in a few seconds.
    assert payload["campaign_wall_seconds"] < 60.0
    assert payload["campaign_peer_days_per_second"] > 10_000
    # The throughput curve must cover at least three network sizes by
    # default, with live numbers at every point.
    curve = payload["network_curve"]
    assert len(curve) >= (3 if not os.environ.get("REPRO_BENCH_NETDB_COUNTS") else 1)
    assert all(point["messages_per_second"] > 100 for point in curve)

    # Shared-exposure headline: the whole figure suite costs at most 1.5×
    # one campaign, and warm sweeps are a small fraction of a campaign.
    assert payload["figure_suite_to_campaign_ratio"] <= 1.5
    assert (
        payload["cached_two_sweep_wall_seconds"]
        < payload["campaign_wall_seconds"]
    )

    # Regression guard against the committed trajectory (>20% is a failure,
    # not a warning; best-of-{CAMPAIGN_REPETITIONS} keeps it off the noise
    # floor).  Hardware-relative, so runs on machines unrelated to the one
    # that committed the baseline (e.g. shared CI runners) may opt out;
    # the dedicated benchmark job and local development keep it on.
    skip_guard = bool(os.environ.get("REPRO_BENCH_SKIP_REGRESSION_GUARD"))
    baseline = None if skip_guard else previous.get("campaign_peer_days_per_second")
    if baseline:
        floor = (1.0 - REGRESSION_TOLERANCE) * float(baseline)
        assert payload["campaign_peer_days_per_second"] >= floor, (
            f"in-memory campaign throughput regressed more than "
            f"{REGRESSION_TOLERANCE:.0%}: "
            f"{payload['campaign_peer_days_per_second']}"
            f" peer-days/s vs committed {baseline} (floor {floor:.1f})"
        )

    # The same guard on the 300-router netDb throughput entry.  A schema-v4
    # baseline carries the curve; a v3 baseline's single-point number was a
    # cold convergence round (publish + exploration), which steady-state
    # publish throughput dominates, so comparing against it stays sound.
    current_300 = next(
        (p["messages_per_second"] for p in curve if p["router_count"] == 300), None
    )
    baseline_300 = None
    if not skip_guard:
        for point in previous.get("network_curve", ()):
            if point.get("router_count") == 300:
                baseline_300 = point.get("messages_per_second")
        if baseline_300 is None:
            baseline_300 = previous.get("network_messages_per_second")
    if baseline_300 and current_300 is not None:
        floor = (1.0 - REGRESSION_TOLERANCE) * float(baseline_300)
        assert current_300 >= floor, (
            f"netDb publish throughput (300 routers) regressed more than "
            f"{REGRESSION_TOLERANCE:.0%}: {current_300} msgs/s vs committed "
            f"{baseline_300} (floor {floor:.1f})"
        )

    # Enrichment plane: the batched range-DB path must stay above the hard
    # 1M lookups/sec floor (machine-independent by a wide margin — the
    # vectorised searchsorted path runs tens of millions per second), the
    # hot-set cache must actually cache, and throughput joins the same
    # hardware-relative regression guard as the campaign numbers.
    enrichment = payload["enrichment"]
    assert (
        enrichment["range_db_lookups_per_second"]
        >= ENRICHMENT_MIN_LOOKUPS_PER_SECOND
    ), (
        f"batched range-DB lookups fell below the "
        f"{ENRICHMENT_MIN_LOOKUPS_PER_SECOND:,}/s floor: "
        f"{enrichment['range_db_lookups_per_second']:,.0f}/s"
    )
    assert enrichment["cache_hit_ratio"] > 0.9
    baseline_enrichment = (
        None
        if skip_guard
        else previous.get("enrichment", {}).get("range_db_lookups_per_second")
    )
    if baseline_enrichment:
        floor = (1.0 - REGRESSION_TOLERANCE) * float(baseline_enrichment)
        assert enrichment["range_db_lookups_per_second"] >= floor, (
            f"batched range-DB lookup throughput regressed more than "
            f"{REGRESSION_TOLERANCE:.0%}: "
            f"{enrichment['range_db_lookups_per_second']:,.0f}/s vs committed "
            f"{baseline_enrichment:,.0f}/s (floor {floor:,.0f}/s)"
        )

    # Campaign service: the digest-grouped grid must have built its shared
    # exposure exactly once and beaten four cold standalone runs by the
    # hard floor.  The speedup is a same-machine ratio, so the floor holds
    # everywhere; the trajectory additionally joins the regression guard.
    service = payload["campaign_service"]
    assert service["grid_exposure_builds"] == 1, (
        f"the one-digest grid built its SharedExposure "
        f"{service['grid_exposure_builds']} times instead of once"
    )
    assert service["grid_speedup"] >= GRID_SPEEDUP_FLOOR, (
        f"grid run sped up standalone runs only "
        f"{service['grid_speedup']:.2f}x (floor {GRID_SPEEDUP_FLOOR:.1f}x) — "
        f"the queue/persist overhead is eating the shared-exposure win"
    )
    baseline_speedup = (
        None if skip_guard else previous.get("campaign_service", {}).get("grid_speedup")
    )
    if baseline_speedup:
        floor = (1.0 - REGRESSION_TOLERANCE) * float(baseline_speedup)
        assert service["grid_speedup"] >= floor, (
            f"campaign-service grid speedup regressed more than "
            f"{REGRESSION_TOLERANCE:.0%}: {service['grid_speedup']:.2f}x vs "
            f"committed {baseline_speedup:.2f}x (floor {floor:.2f}x)"
        )

    # A network with a no-op FaultPlan attached must publish as fast as one
    # that never attached a plan.  Timing-sensitive like the guards above,
    # so it honours the same opt-out for shared CI runners.
    if not skip_guard:
        ratio = payload["network_fault_overhead_ratio"]
        assert ratio < 1.0 + FAULT_OVERHEAD_TOLERANCE, (
            f"disabled-fault publish path costs {ratio:.3f}x the plain path "
            f"(budget {1.0 + FAULT_OVERHEAD_TOLERANCE:.2f}x) — the zero-fault "
            f"plane is no longer free"
        )

    # Out-of-core acceptance.  Byte identity first: restoring the exposure
    # from a sharded bundle must reproduce the in-memory campaign summary
    # bit for bit at full scale.
    budget = payload["memory_budget"]
    assert (
        budget["out_of_core_scale1"]["summary_sha256"]
        == budget["reference_in_memory"]["summary_sha256"]
    ), "out-of-core scale-1.0 campaign summary diverged from the in-memory run"
    # Memory gate: the large out-of-core campaign (10x the paper's
    # population by default) must peak below the fixed MEMORY_BUDGET_MIB
    # ceiling — the streamed windows, not the population multiple, bound
    # the working set (an in-memory run at the same scale peaks ~1140 MiB).
    large_peak = budget["out_of_core_large"]["peak_rss_kib"]
    assert large_peak < MEMORY_BUDGET_MIB * 1024, (
        f"scale-{MEMORY_BUDGET_SCALE:g} out-of-core campaign peaked at "
        f"{large_peak / 1024:.0f} MiB, over the {MEMORY_BUDGET_MIB:.0f} MiB "
        f"budget"
    )
    # And the large run must still be making real progress, not thrashing.
    assert budget["out_of_core_large"]["peer_days_per_second"] > 10_000

    # Persist only after every assertion passed: a failing run must not
    # replace the committed baseline (or a re-run would silently ratchet
    # the regression guard down to the regressed numbers).
    with open(_BENCH_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
