"""Figure 7 — peer longevity (continuous vs intermittent presence),
Section 5.2.1.

Paper result: 56.36 % of peers stay in the network for more than seven days
continuously (73.93 % intermittently); 20.03 % / 31.15 % stay for more than
thirty days.  The qualitative claim: more than half of the peers remain in
the network for over a week, so the network is fairly stable despite being
a dynamic P2P system.
"""

from repro.core import longevity, longevity_figure

from .conftest import bench_days


def test_figure_07_longevity(benchmark, main_campaign):
    figure = benchmark.pedantic(
        lambda: longevity_figure(main_campaign.log, step=5), rounds=1, iterations=1
    )
    print()
    print(figure.to_text(float_format=".1f"))
    thresholds = (7,) if bench_days() <= 30 else (7, 30)
    summary = longevity(main_campaign.log, thresholds=thresholds)
    for threshold, values in summary.items():
        print(
            f">{threshold} days: continuous={values['continuous']:.1f}% "
            f"intermittent={values['intermittent']:.1f}% "
            f"(paper: 56.4%/73.9% at 7 days, 20.0%/31.2% at 30 days)"
        )

    continuous = figure.get("continuously")
    intermittent = figure.get("intermittently")
    # Survival curves: non-increasing, intermittent >= continuous everywhere.
    assert all(b <= a + 1e-9 for a, b in zip(continuous.ys, continuous.ys[1:]))
    for x in continuous.xs:
        assert intermittent.y_at(x) >= continuous.y_at(x)
    # The headline: the majority of peers stay longer than a week
    # (intermittently), and a large minority does so continuously.
    assert summary[7]["intermittent"] > 50.0
    assert summary[7]["continuous"] > 30.0
