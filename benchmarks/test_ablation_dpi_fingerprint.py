"""Ablation — DPI fingerprinting of the NTCP handshake (Section 2.2.2).

The paper notes that the first four NTCP handshake messages have fixed
lengths of 288, 304, 448, and 48 bytes, making legacy I2P flows
fingerprintable by flow analysis, and that the NTCP2 redesign removes this
signature.  This benchmark measures the precision/recall of the
fixed-length classifier over a mixed traffic trace.
"""

import random

from repro.netdb.identity import sha256
from repro.transport import (
    HandshakeFingerprinter,
    NTCP2Session,
    NTCPSession,
    synthetic_background_flow,
)


def _build_trace(ntcp_flows=200, ntcp2_flows=200, background_flows=600, seed=5):
    rng = random.Random(seed)
    flows = []
    for i in range(ntcp_flows):
        session = NTCPSession(sha256(f"a{i}".encode()), sha256(f"b{i}".encode()))
        session.handshake()
        for _ in range(rng.randint(1, 6)):
            session.send(rng.randint(40, 1500))
        flows.append(session.flow_record())
    for i in range(ntcp2_flows):
        session = NTCP2Session(
            sha256(f"c{i}".encode()), sha256(f"d{i}".encode()), rng=random.Random(seed + i)
        )
        session.handshake()
        for _ in range(rng.randint(1, 6)):
            session.send(rng.randint(40, 1500))
        flows.append(session.flow_record())
    for protocol in ("https", "ssh", "other"):
        for _ in range(background_flows // 3):
            flows.append(synthetic_background_flow(rng, protocol))
    rng.shuffle(flows)
    return flows


def test_ablation_dpi_fingerprint(benchmark):
    flows = _build_trace()
    fingerprinter = HandshakeFingerprinter(tolerance=0)
    metrics = benchmark(lambda: fingerprinter.evaluate(flows))
    print()
    print("flows in trace:", len(flows))
    for key, value in metrics.items():
        print(f"{key}: {value}")

    # Legacy NTCP flows are perfectly identifiable by the fixed signature...
    assert metrics["recall"] == 1.0
    assert metrics["precision"] == 1.0
    assert metrics["false_positives"] == 0
    # ...while NTCP2 flows and background traffic are never flagged, i.e.
    # the redesign removes the address-free detection vector entirely.
    ntcp2 = [f for f in flows if f.protocol == "ntcp2"]
    assert not any(fingerprinter.matches(f) for f in ntcp2)
