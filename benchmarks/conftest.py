"""Shared configuration for the benchmark harness.

Every paper table and figure has one benchmark module.  The campaign-based
figures (5–13) share a single main-campaign run, executed once per session.

Scale knobs (environment variables):

``REPRO_BENCH_SCALE``
    Population scale relative to the paper's ~30.5K daily peers
    (default 0.1 → ~3K daily peers).  Use 1.0 to run at paper scale.
``REPRO_BENCH_DAYS``
    Campaign length in days for the main campaign (default 30; the paper
    ran for ~90 days).

Each benchmark prints the regenerated rows/series (visible with ``-s`` or
in the captured output section) so the shapes can be compared against the
paper; EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core import CampaignResult, run_main_campaign  # noqa: E402


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


def bench_days() -> int:
    return int(os.environ.get("REPRO_BENCH_DAYS", "30"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "2018"))


@pytest.fixture(scope="session")
def main_campaign() -> CampaignResult:
    """The 20-router main campaign shared by the Figure 5–13 benchmarks."""
    return run_main_campaign(
        days=bench_days(),
        scale=bench_scale(),
        seed=bench_seed(),
        collect_daily_ips=True,
        include_victim_client=True,
    )


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
