"""Figure 9 — capacity distribution of I2P peers, Section 5.3.1.

Paper result (daily averages): L ≈ 21K (the default tier dominates),
N ≈ 9K, P ≈ 2.1K, X ≈ 1.8K, O ≈ 875, M ≈ 400, K ≈ 360.
"""

from repro.core import capacity_figure, flag_distribution


def test_figure_09_capacity(benchmark, main_campaign):
    distribution = benchmark.pedantic(
        lambda: flag_distribution(main_campaign.log), rounds=1, iterations=1
    )
    figure = capacity_figure(main_campaign.log)
    print()
    print(figure.to_text(float_format=".0f"))
    print("daily averages per tier:",
          {tier: round(value) for tier, value in distribution.items()})

    # L dominates, N is second, and the remaining tiers trail off
    # (P > X > O > M ~ K), matching the paper's ordering.
    assert distribution["L"] == max(distribution.values())
    assert distribution["N"] == sorted(distribution.values())[-2]
    assert distribution["L"] > 2 * distribution["N"]
    assert distribution["P"] > distribution["O"]
    assert distribution["X"] > distribution["O"]
    assert distribution["O"] > distribution["M"]
    # The default tier accounts for roughly two thirds of the network.
    total = sum(distribution.values())
    assert 0.55 < distribution["L"] / total < 0.80
    assert 0.18 < distribution["N"] / total < 0.35
