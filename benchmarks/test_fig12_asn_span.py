"""Figure 12 — number of autonomous systems in which multi-IP peers reside,
Section 5.3.2.

Paper result: more than 80 % of peers are only ever seen in a single AS;
8.4 % appear in more than ten ASes (routers operated behind VPNs or Tor),
with extremes of 39 ASes and 25 countries for a single peer.
"""

from repro.core import asn_span, asn_span_figure


def test_figure_12_asn_span(benchmark, main_campaign):
    spans = benchmark.pedantic(
        lambda: asn_span(main_campaign.log), rounds=1, iterations=1
    )
    figure = asn_span_figure(main_campaign.log, max_asns=10)
    total = sum(spans.values())
    single_share = spans.get(1, 0) / total
    over_ten_share = sum(count for n, count in spans.items() if n > 10) / total
    max_span = max(spans)
    print()
    print(figure.to_text(float_format=".1f"))
    print(
        f"single-AS share: {single_share:.1%} (paper >80%); "
        f">10 ASes: {over_ten_share:.2%} (paper 8.4%); "
        f"max ASes for one peer: {max_span} (paper 39)"
    )

    # The vast majority of peers stay within one AS.
    assert single_share > 0.70
    # A small but real group of peers hops across many ASes.
    assert sum(count for n, count in spans.items() if n >= 2) > 0
    assert max_span >= 3
    counts = figure.get("observed peers")
    assert counts.y_at(1) == max(counts.ys)
    assert sum(figure.get("percentage").ys) > 99.0
