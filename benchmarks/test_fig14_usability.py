"""Figure 14 — timed-out requests and page-load latency under blocking,
Section 6.2.3.

Paper result: eepsite page loads take ~3.4 s without blocking; a 65 %
blocking rate already pushes the load time above 20 s with ~40 % of
requests timing out; 70–90 % blocking gives >40 s loads and >60 %
timeouts; above 90 % practically every request times out (HTTP 504).
"""

import random

from repro.core import client_netdb_from_dayview, usability_curve
from repro.sim import I2PPopulation, PopulationConfig

from .conftest import bench_scale, bench_seed

BLOCKING_RATES = (
    0.0, 0.65, 0.67, 0.69, 0.71, 0.73, 0.75, 0.77, 0.79, 0.81,
    0.83, 0.85, 0.87, 0.89, 0.91, 0.93, 0.95, 0.97,
)


def _build_client_netdb():
    population = I2PPopulation(
        PopulationConfig(
            target_daily_population=max(400, int(30_500 * bench_scale() * 0.5)),
            horizon_days=2,
            seed=bench_seed() + 7,
        )
    )
    view = population.day_view(0)
    size = min(800, max(200, view.online_count // 3))
    return client_netdb_from_dayview(population, view, size=size, rng=random.Random(1))


def _mean_over(series, low, high):
    values = [y for x, y in series.points if low <= x <= high]
    return sum(values) / len(values)


def test_figure_14_usability(benchmark):
    netdb = _build_client_netdb()
    figure = benchmark.pedantic(
        lambda: usability_curve(
            netdb, blocking_rates=BLOCKING_RATES, fetches_per_rate=25, seed=13
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.to_text(float_format=".1f"))

    timeouts = figure.get("timed out requests (%)")
    latency = figure.get("page load time (s)")

    # Baseline: a few seconds, no timeouts (paper: 3.4 s).
    assert latency.y_at(0.0) < 8.0
    assert timeouts.y_at(0.0) == 0.0
    # 65 % blocking already causes long page loads and visible timeouts
    # (paper: >20 s and ~40 % timeouts).
    assert latency.y_at(65.0) > 15.0
    assert timeouts.y_at(65.0) >= 10.0
    # 70–90 % blocking: heavy degradation (paper: >40 s, >60 % timeouts).
    assert _mean_over(latency, 71.0, 89.0) > 30.0
    assert _mean_over(timeouts, 71.0, 89.0) > 35.0
    # Above 90 % the network is effectively unusable (paper: 95–100 %).
    assert _mean_over(timeouts, 91.0, 97.0) > 70.0
    assert _mean_over(latency, 91.0, 97.0) > 45.0
