"""Repository-level pytest configuration.

Makes ``src/`` importable even when the package has not been installed
(e.g. a fresh clone in a fully offline environment), so ``pytest tests/``
and ``pytest benchmarks/`` work out of the box.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
