"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs (``pip install -e .``) work in fully offline
environments where the ``wheel`` package needed for PEP 660 editable wheels
may not be available.
"""

from setuptools import setup

setup(
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
